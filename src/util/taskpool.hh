/**
 * @file
 * Reusable thread-pool task fan-out shared by the characterization
 * runner and the Figure 10 mitigation-sweep driver.
 *
 * A pool runs index-addressed job batches: forEach(count, job) invokes
 * job(i) for every i in [0, count) across the workers and the calling
 * thread, blocking until the batch drains. Jobs must be safe to call
 * concurrently for distinct indices and must not depend on execution
 * order; under that contract results are independent of the thread
 * count, which is what makes the figure benches bit-identical between
 * serial and parallel runs.
 */

#ifndef ROWHAMMER_UTIL_TASKPOOL_HH
#define ROWHAMMER_UTIL_TASKPOOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/logging.hh"

namespace rowhammer::util
{

/**
 * Thrown by forEach() when the batch watchdog fires. A FatalError
 * subtype so existing catch sites keep working; the service layer
 * catches this type specifically to map a hung request to a
 * DeadlineExceeded reply instead of a generic internal error.
 */
class BatchDeadlineExceeded : public FatalError
{
  public:
    explicit BatchDeadlineExceeded(const std::string &msg)
        : FatalError(msg)
    {
    }
};

/**
 * Thrown by forEach() when requestCancel() aborted the batch (e.g. a
 * daemon draining on SIGTERM). Also a FatalError subtype; already-
 * completed shards were checkpointed by the caller's own put() calls,
 * so a cancelled batch resumes from where it stopped.
 */
class BatchCancelled : public FatalError
{
  public:
    explicit BatchCancelled(const std::string &msg) : FatalError(msg)
    {
    }
};

/**
 * Fixed-width worker pool with batch semantics. Workers are started
 * once and reused across batches; the calling thread drains alongside
 * them, so a 1-thread pool costs nothing over a serial loop.
 */
class TaskPool
{
  public:
    /** @param threads Worker count; 0 = one per hardware thread. */
    explicit TaskPool(int threads = 0);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** Pool width (workers; the caller additionally joins batches). */
    int threadCount() const { return threads_; }

    /**
     * Run job(i) for every i in [0, count); blocks until the batch is
     * done. The first exception any job throws is rethrown here (the
     * remaining indices still run), and the pool survives for the next
     * batch.
     */
    void forEach(std::size_t count,
                 const std::function<void(std::size_t)> &job);

    /**
     * Watchdog: a per-batch wall-clock deadline (zero disables, the
     * default). When a batch outlives it, the pool dumps the in-flight
     * shard indices to stderr — a hung shard becomes a diagnosable
     * error instead of a silent forever-stall — cancels the not-yet-
     * claimed remainder of the batch, and forEach() throws FatalError
     * through the existing exception path once the in-flight jobs
     * return. Long-running jobs may poll batchCancelled() to bail out
     * early; a job that never returns still gets its index dumped at
     * the deadline, but cannot be forcibly killed. With a deadline
     * armed the dispatching thread watches instead of draining, so
     * batches run on the worker threads alone.
     */
    void setBatchDeadline(std::chrono::milliseconds deadline);

    /** True once the current batch's watchdog has fired. */
    [[nodiscard]] bool batchCancelled() const
    {
        return cancel_.load(std::memory_order_relaxed);
    }

    /**
     * Sticky external cancellation, safe to call from any thread (a
     * signal-handling drain thread, a connection handler whose peer
     * vanished). The current batch stops claiming new indices —
     * in-flight jobs finish — and forEach() throws BatchCancelled;
     * every later forEach() throws immediately until resetCancel().
     */
    void requestCancel()
    {
        externalCancel_.store(true, std::memory_order_relaxed);
        cancel_.store(true, std::memory_order_relaxed);
    }

    /** Re-arm the pool after requestCancel(); the next batch runs. */
    void resetCancel()
    {
        externalCancel_.store(false, std::memory_order_relaxed);
    }

    /** True while requestCancel() is in effect. */
    [[nodiscard]] bool cancelRequested() const
    {
        return externalCancel_.load(std::memory_order_relaxed);
    }

    /**
     * results[i] = fn(i) for every i in [0, count). fn must be safe to
     * call concurrently for distinct i.
     */
    template <typename Fn>
    [[nodiscard]] auto map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using Result = decltype(fn(std::size_t{0}));
        static_assert(!std::is_same_v<Result, bool>,
                      "map() jobs must not return bool: concurrent "
                      "writes to std::vector<bool> elements race; "
                      "return int or a struct instead");
        std::vector<Result> results(count);
        forEach(count, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    /** Worker main loop: wait for a batch, drain it, repeat. */
    void workerLoop(int slot);

    /** Pull indices off the current batch until it is exhausted.
     *  `slot` identifies this thread's in-flight bookkeeping entry
     *  (workers use [0, threads_), the dispatching caller threads_). */
    void drain(const std::function<void(std::size_t)> &job, int slot);

    int threads_ = 1;

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t batchSize_ = 0;
    std::uint64_t batchGeneration_ = 0;
    int workersDraining_ = 0;
    bool stop_ = false;
    std::exception_ptr firstError_;
    std::atomic<std::size_t> next_{0};

    // Watchdog state: the per-batch deadline, the cooperative cancel
    // flag, and one in-flight index slot per drainer (-1 = idle).
    std::chrono::milliseconds deadline_{0};
    std::atomic<bool> cancel_{false};
    std::atomic<bool> externalCancel_{false};
    std::unique_ptr<std::atomic<std::int64_t>[]> inFlight_;
};

/**
 * Deterministic shard gang for epoch-parallel co-simulation
 * (core::System's multi-channel engine; see docs/ARCHITECTURE.md,
 * "Threading model").
 *
 * N shards advance toward a moving horizon on persistent worker
 * threads while the caller runs the serial side of the epoch:
 *
 *   gang.begin(safe, horizon);         // workers start advancing
 *   for each serial step t:
 *       ...gang.withShard(s, fn)...    // synchronized shard access
 *       gang.shrinkHorizon(h);         // new upper bound (caller only)
 *       gang.publishSafe(t + 1);       // workers may advance further
 *   gang.finish(final);                // all shards at `final`; quiesce
 *
 * Workers own shards round-robin and advance each one to
 * min(horizon, safe) whenever that bound grows, taking the shard's
 * mutex around every advance callback; the caller takes the same mutex
 * via withShard() for mid-epoch shard access, so shard state is never
 * touched concurrently. finish() drains every shard itself (a
 * descheduled worker cannot stall the epoch) and then waits for the
 * workers to quiesce, after which the caller may touch shard state
 * without locks until the next begin(). The advance callback must be
 * idempotent for targets at or below a shard's current position
 * (advancing to min(horizon, safe) twice is a no-op), which makes the
 * result independent of worker count and scheduling.
 *
 * Synchronization is spin-first (epochs are microseconds; a condvar
 * round-trip per epoch would dominate), parking on a condvar only
 * between epochs after a bounded spin.
 */
class EpochGang
{
  public:
    using AdvanceFn = std::function<void(int shard, std::int64_t target)>;

    /**
     * @param shards Number of independently advancing shards.
     * @param workers Worker threads to start (clamped to [1, shards]).
     * @param advance Called with the shard's mutex held; must advance
     *        the shard to at most `target` and be a no-op when the
     *        shard is already there.
     */
    EpochGang(int shards, int workers, AdvanceFn advance);
    ~EpochGang();

    EpochGang(const EpochGang &) = delete;
    EpochGang &operator=(const EpochGang &) = delete;

    int workerCount() const { return workerCount_; }

    /** Start an epoch: workers advance shards to min(horizon, safe). */
    void begin(std::int64_t safe, std::int64_t horizon);

    /** Raise the workers' safe bound (caller thread only, monotone). */
    void publishSafe(std::int64_t safe);

    /** Lower the horizon (caller thread only; never below `safe`). */
    void shrinkHorizon(std::int64_t horizon);

    /**
     * End the epoch: every shard is advanced to exactly `final` (which
     * must be >= the last published safe bound and <= the horizon) and
     * all workers have quiesced when this returns.
     */
    void finish(std::int64_t final);

    /** Run `fn` with the shard's mutex held (mid-epoch shard access). */
    template <typename Fn>
    void withShard(int shard, Fn &&fn)
    {
        std::lock_guard<std::mutex> lock(
            shardMu_[static_cast<std::size_t>(shard)]);
        fn();
    }

  private:
    void workerLoop(int slot);

    AdvanceFn advance_;
    int shards_;
    int workerCount_ = 0;
    std::unique_ptr<std::mutex[]> shardMu_;
    std::vector<std::thread> workers_;

    // Epoch state. `epoch_` is bumped under parkMu_ by begin() so a
    // worker deciding to park cannot miss the wakeup; all other fields
    // are written by the caller and read by the workers.
    std::atomic<std::int64_t> safe_{0};
    std::atomic<std::int64_t> horizon_{0};
    std::atomic<bool> finishing_{false};
    std::atomic<int> done_{0};
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};

    std::mutex parkMu_;
    std::condition_variable parkCv_;
};

} // namespace rowhammer::util

#endif // ROWHAMMER_UTIL_TASKPOOL_HH
