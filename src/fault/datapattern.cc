#include "datapattern.hh"

#include "util/logging.hh"

namespace rowhammer::fault
{

std::array<DataPattern, numDataPatterns>
allDataPatterns()
{
    return {DataPattern::Solid0,     DataPattern::Solid1,
            DataPattern::ColStripe0, DataPattern::ColStripe1,
            DataPattern::Checkered0, DataPattern::Checkered1,
            DataPattern::RowStripe0, DataPattern::RowStripe1};
}

std::array<DataPattern, 6>
figure4Patterns()
{
    return {DataPattern::RowStripe0, DataPattern::RowStripe1,
            DataPattern::ColStripe0, DataPattern::ColStripe1,
            DataPattern::Checkered0, DataPattern::Checkered1};
}

std::string
toString(DataPattern dp)
{
    switch (dp) {
      case DataPattern::Solid0:
        return "SO0";
      case DataPattern::Solid1:
        return "SO1";
      case DataPattern::ColStripe0:
        return "CS0";
      case DataPattern::ColStripe1:
        return "CS1";
      case DataPattern::Checkered0:
        return "CH0";
      case DataPattern::Checkered1:
        return "CH1";
      case DataPattern::RowStripe0:
        return "RS0";
      case DataPattern::RowStripe1:
        return "RS1";
      default:
        util::panic("toString: unknown pattern");
    }
}

} // namespace rowhammer::fault
