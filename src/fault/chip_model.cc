#include "chip_model.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace rowhammer::fault
{

void
ChipGeometry::serialize(util::ByteWriter &w) const
{
    w.i64(banks);
    w.i64(rows);
    w.i64(rowDataBits);
}

std::uint64_t
ChipGeometry::hash() const
{
    util::ByteWriter w;
    serialize(w);
    return util::fnv1a64(w.bytes());
}

ChipGeometry
ChipGeometry::deserialize(util::ByteReader &r)
{
    ChipGeometry g;
    g.banks = static_cast<int>(r.i64());
    g.rows = static_cast<int>(r.i64());
    g.rowDataBits = static_cast<long>(r.i64());
    return g;
}

namespace
{

/** The HC value weak-cell densities are specified at (150k hammers). */
constexpr double calibrationHc = 150000.0;

/** On-die ECC word sizes (LPDDR4: 128 data + 8 parity bits). */
constexpr long eccDataBits = 128;
constexpr long eccCodeBits = 136;

/** 64-bit-word clustering granularity for non-ECC chips. */
constexpr long plainWordBits = 64;

/**
 * Slot hash for the open-addressed weak-cell cache. Keys are dense
 * (bank * rows + row), so the identity maps sequential rows to
 * sequential slots — collision-free linear probing at our <= 50% load
 * without the latency of a mixing hash.
 */
std::uint64_t
hashKey(std::uint64_t x)
{
    return x;
}

std::uint64_t
mixRow(std::uint64_t seed, int bank, int row)
{
    std::uint64_t x = seed ^ (static_cast<std::uint64_t>(bank) << 40) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row)) << 8) ^
        0xd1b54a32d192ed03ULL;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Per-pattern aggressor-coupling polarity factor (see file comment). */
double
polarityFactor(DataPattern dp)
{
    static const std::array<double, numDataPatterns> table = [] {
        std::array<double, numDataPatterns> t{};
        for (int i = 0; i < numDataPatterns; ++i) {
            const auto p = static_cast<DataPattern>(i);
            const int diff = std::popcount(
                static_cast<unsigned>(victimByte(p) ^ aggressorByte(p)));
            t[static_cast<std::size_t>(i)] =
                0.70 + 0.30 * static_cast<double>(diff) / 8.0;
        }
        return t;
    }();
    return table[static_cast<std::size_t>(dp)];
}

double
logistic(double x)
{
    if (x > 30.0)
        return 1.0;
    if (x < -30.0)
        return 0.0;
    return 1.0 / (1.0 + std::exp(-x));
}

} // namespace

ChipModel::ChipModel(ChipSpec spec, double chip_hc_first,
                     std::uint64_t seed, ChipGeometry geometry)
    : spec_(spec), geometry_(geometry), hcFirst_(chip_hc_first),
      seed_(seed), onDie_(eccDataBits)
{
    if (hcFirst_ <= 0.0)
        util::fatal("ChipModel: chip_hc_first must be positive");
    if (geometry_.banks <= 0 || geometry_.rows < 16 ||
        geometry_.rowDataBits < 256) {
        util::fatal("ChipModel: geometry too small");
    }
    if (spec_.onDieEcc && geometry_.rowDataBits % eccDataBits != 0)
        util::fatal("ChipModel: row size must be a multiple of 128 bits");

    // Calibrate the threshold power-law exponent so that the expected
    // minimum sampled threshold across the whole chip equals hcFirst_:
    // with N cells of threshold Tcal * U^(1/k), E[min] ~ Tcal * N^(-1/k).
    const double total_bits = static_cast<double>(geometry_.banks) *
        geometry_.rows * static_cast<double>(geometry_.rowDataBits);
    const double n_cells =
        std::max(2.0, total_bits * spec_.weakDensityAt150k);
    if (hcFirst_ < 0.93 * calibrationHc) {
        powerLawK_ =
            std::log(n_cells) / std::log(calibrationHc / hcFirst_);
        powerLawK_ = std::clamp(powerLawK_, 1.5, 9.0);
    } else {
        powerLawK_ = 5.0;
    }

    const std::size_t flat_rows = static_cast<std::size_t>(
        geometry_.banks) * static_cast<std::size_t>(geometry_.rows);
    actCount_.assign(flat_rows, 0);
    actEpoch_.assign(flat_rows, 0);
    refreshBase_.assign(flat_rows, 0.0);
    refreshEpoch_.assign(flat_rows, 0);
    cellKeys_.assign(64, 0);
    cellSlots_.assign(64, 0);

    // Deterministic location of the chip's weakest cell; see header.
    util::Rng id_rng(seed_ ^ 0xabcdef12345ULL);
    weakestBank_ = static_cast<int>(
        id_rng.uniformInt(0, static_cast<std::uint64_t>(
                                 geometry_.banks - 1)));
    // Keep away from array edges so double-sided hammering is possible.
    weakestRow_ = static_cast<int>(id_rng.uniformInt(
        8, static_cast<std::uint64_t>(geometry_.rows - 9)));
}

int
ChipModel::physRow(int row) const
{
    if (spec_.rowRemap == RowRemap::PairedWordline)
        return row / 2;
    return row;
}

long
ChipModel::rowStoredBits() const
{
    if (spec_.onDieEcc)
        return geometry_.rowDataBits / eccDataBits * eccCodeBits;
    return geometry_.rowDataBits;
}

AggressorList
ChipModel::aggressorRows(int victim_row) const
{
    const int step =
        spec_.rowRemap == RowRemap::PairedWordline ? 2 : 1;
    AggressorList out;
    if (victim_row - step >= 0)
        out.push(victim_row - step);
    if (victim_row + step < geometry_.rows)
        out.push(victim_row + step);
    return out;
}

void
ChipModel::writePattern(DataPattern dp, int victim_parity)
{
    pattern_ = dp;
    victimParity_ = victim_parity & 1;
    // Epoch bump invalidates every accumulation entry in O(1). On the
    // (never-in-practice) 2^32 wrap, fall back to a real clear.
    if (++epoch_ == 0) {
        std::fill(actEpoch_.begin(), actEpoch_.end(), 0);
        std::fill(refreshEpoch_.begin(), refreshEpoch_.end(), 0);
        epoch_ = 1;
    }
}

void
ChipModel::addActivations(int bank, int row, std::int64_t count)
{
    if (bank < 0 || bank >= geometry_.banks || row < 0 ||
        row >= geometry_.rows) {
        util::panic("ChipModel::addActivations: address out of range");
    }
    const std::size_t i = flatIndex(bank, physRow(row));
    if (actEpoch_[i] != epoch_) {
        actEpoch_[i] = epoch_;
        actCount_[i] = count;
    } else {
        actCount_[i] += count;
    }
}

double
ChipModel::rawExposure(int bank, int row) const
{
    const int p = physRow(row);

    // Fast path for the dominant DDR3/DDR4 case: coupling only from the
    // two adjacent wordlines.
    if (spec_.maxCouplingDistance == 1) {
        const std::size_t base = flatIndex(bank, 0);
        double exposure = 0.0;
        if (p - 1 >= 0 && actEpoch_[base + p - 1] == epoch_)
            exposure += 0.5 * static_cast<double>(actCount_[base + p - 1]);
        if (p + 1 < geometry_.rows && actEpoch_[base + p + 1] == epoch_)
            exposure += 0.5 * static_cast<double>(actCount_[base + p + 1]);
        return exposure;
    }

    double exposure = 0.0;
    for (int dist = 1; dist <= spec_.maxCouplingDistance; dist += 2) {
        double coupling = 1.0;
        if (dist == 3)
            coupling = spec_.distance3Coupling;
        else if (dist == 5)
            coupling = spec_.distance5Coupling;
        if (coupling <= 0.0)
            continue;
        for (int sign : {-1, +1}) {
            const int neighbor = p + sign * dist;
            if (neighbor < 0 || neighbor >= geometry_.rows)
                continue;
            const std::size_t i = flatIndex(bank, neighbor);
            if (actEpoch_[i] == epoch_) {
                exposure +=
                    0.5 * coupling * static_cast<double>(actCount_[i]);
            }
        }
    }
    return exposure;
}

void
ChipModel::refreshRow(int bank, int row)
{
    const std::size_t i = flatIndex(bank, row);
    refreshBase_[i] = rawExposure(bank, row);
    refreshEpoch_[i] = epoch_;
}

double
ChipModel::exposure(int bank, int row) const
{
    double e = rawExposure(bank, row);
    const std::size_t i = flatIndex(bank, row);
    if (refreshEpoch_[i] == epoch_)
        e -= refreshBase_[i];
    return std::max(0.0, e);
}

double
ChipModel::sampleThreshold(util::Rng &rng) const
{
    if (hcFirst_ >= 0.93 * calibrationHc) {
        // Not RowHammerable below the tested range: thresholds sit above
        // the chip's (large) hcFirst.
        return hcFirst_ * (1.0 + 2.0 * rng.uniform());
    }
    double u = rng.uniform();
    if (u <= 0.0)
        u = 1e-12;
    const double t = calibrationHc * std::pow(u, 1.0 / powerLawK_);
    return std::max(t, hcFirst_);
}

ChipModel::WeakCell
ChipModel::sampleCell(util::Rng &rng, long stored_bit,
                      double threshold) const
{
    WeakCell cell;
    cell.storedBit = stored_bit;
    cell.threshold = static_cast<float>(threshold);
    cell.trueCell = rng.bernoulli(spec_.trueCellFraction);
    for (int dp = 0; dp < numDataPatterns; ++dp) {
        if (dp == static_cast<int>(spec_.worstPattern))
            cell.coupling[dp] = 1.0F;
        else
            cell.coupling[dp] =
                static_cast<float>(0.55 + 0.4 * rng.uniform());
    }
    return cell;
}

void
ChipModel::growCellTable() const
{
    const std::size_t capacity = cellKeys_.size() * 2;
    std::vector<std::uint64_t> keys(capacity, 0);
    std::vector<std::uint32_t> slots(capacity, 0);
    for (std::size_t i = 0; i < cellKeys_.size(); ++i) {
        if (cellKeys_[i] == 0)
            continue;
        std::size_t j = hashKey(cellKeys_[i]) & (capacity - 1);
        while (keys[j] != 0)
            j = (j + 1) & (capacity - 1);
        keys[j] = cellKeys_[i];
        slots[j] = cellSlots_[i];
    }
    cellKeys_ = std::move(keys);
    cellSlots_ = std::move(slots);
}

const ChipModel::RowCells &
ChipModel::weakCells(int bank, int row) const
{
    // Open-addressed probe; key is flatIndex+1 so 0 marks empty slots.
    const std::uint64_t key =
        static_cast<std::uint64_t>(flatIndex(bank, row)) + 1;
    std::size_t mask = cellKeys_.size() - 1;
    std::size_t slot = hashKey(key) & mask;
    while (cellKeys_[slot] != 0) {
        if (cellKeys_[slot] == key)
            return cellStore_[cellSlots_[slot]];
        slot = (slot + 1) & mask;
    }

    util::Rng rng(mixRow(seed_, bank, row));
    std::vector<WeakCell> cells;

    const long stored_bits = rowStoredBits();
    const long word_bits = spec_.onDieEcc ? eccCodeBits : plainWordBits;
    const long words = stored_bits / word_bits;

    // Expected weak cells in this row at the calibration hammer count.
    const double lambda = static_cast<double>(geometry_.rowDataBits) *
        spec_.weakDensityAt150k;
    const double mean_cluster = std::max(1.0, spec_.meanClusterSize);
    const auto n_clusters = rng.poisson(lambda / mean_cluster);

    for (std::uint64_t c = 0; c < n_clusters; ++c) {
        const auto size =
            1 + rng.poisson(mean_cluster - 1.0);
        const long word = static_cast<long>(
            rng.uniformInt(0, static_cast<std::uint64_t>(words - 1)));
        const double base = sampleThreshold(rng);
        for (std::uint64_t m = 0; m < size && m < 8; ++m) {
            const long bit_in_word = static_cast<long>(rng.uniformInt(
                0, static_cast<std::uint64_t>(word_bits - 1)));
            double t = base;
            if (m > 0) {
                t = base * (1.0 + spec_.clusterThresholdSpread *
                                      rng.uniform());
            }
            cells.push_back(
                sampleCell(rng, word * word_bits + bit_in_word, t));
        }
    }

    // Plant the chip's ground-truth weakest cell(s). For on-die-ECC
    // chips a lone weakest cell would be invisible (SEC corrects it), so
    // plant a tight cluster whose second member defines observability.
    if (bank == weakestBank_ && row == weakestRow_) {
        std::size_t planted = 1;
        if (spec_.onDieEcc) {
            cells.push_back(sampleCell(rng, 4, hcFirst_));
            cells.push_back(sampleCell(rng, 5, hcFirst_ * 1.002));
            cells.push_back(sampleCell(rng, 6, hcFirst_ * 1.03));
            planted = 3;
        } else {
            cells.push_back(sampleCell(rng, 4, hcFirst_));
            // Companion cells in the same 64-bit word set the chip's
            // HCsecond/HCthird, i.e. the ECC-strength multipliers of
            // Figure 9 (jittered ~10% per chip).
            if (spec_.eccMultiplier12 > 0.0) {
                const double m12 = spec_.eccMultiplier12 *
                    (0.9 + 0.2 * rng.uniform());
                cells.push_back(
                    sampleCell(rng, 9, hcFirst_ * m12));
                ++planted;
                if (spec_.eccMultiplier23 > 0.0) {
                    const double m23 = spec_.eccMultiplier23 *
                        (0.9 + 0.2 * rng.uniform());
                    cells.push_back(sampleCell(
                        rng, 14, hcFirst_ * m12 * m23));
                    ++planted;
                }
            }
        }
        // The planted cells must respond to the worst pattern: force a
        // charge orientation that the worst pattern's victim data makes
        // vulnerable (through the on-die ECC encoding if present).
        const std::uint8_t vic = victimByte(spec_.worstPattern);
        for (std::size_t i = cells.size() - planted; i < cells.size();
             ++i) {
            cells[i].trueCell = storedBitValue(vic, cells[i].storedBit);
        }
    }

    // Transpose the sampled cells into the SoA cache layout (the
    // sampling above must keep drawing in cell-major order so streams
    // stay bit-identical to the AoS implementation).
    RowCells packed;
    const std::size_t n = cells.size();
    packed.bits.reserve(n);
    packed.lanes.resize(
        static_cast<std::size_t>(numDataPatterns + 1) * n);
    for (std::size_t i = 0; i < n; ++i) {
        packed.bits.push_back((cells[i].storedBit << 1) |
                              (cells[i].trueCell ? 1 : 0));
        packed.lanes[i] = cells[i].threshold;
        for (int dp = 0; dp < numDataPatterns; ++dp) {
            packed.lanes[static_cast<std::size_t>(dp + 1) * n + i] =
                cells[i].coupling[static_cast<std::size_t>(dp)];
        }
    }

    if (cellCount_ + 1 > cellKeys_.size() / 2) {
        growCellTable();
        mask = cellKeys_.size() - 1;
        slot = hashKey(key) & mask;
        while (cellKeys_[slot] != 0)
            slot = (slot + 1) & mask;
    }
    cellStore_.push_back(std::move(packed));
    cellKeys_[slot] = key;
    cellSlots_[slot] = static_cast<std::uint32_t>(cellStore_.size() - 1);
    ++cellCount_;
    return cellStore_.back();
}

const util::BitVec &
ChipModel::dataWord(std::uint8_t fill) const
{
    util::BitVec &entry = dataWordCache_[fill];
    if (entry.size() == 0)
        entry = util::BitVec(static_cast<std::size_t>(eccDataBits), fill);
    return entry;
}

const util::BitVec &
ChipModel::codeword(std::uint8_t fill) const
{
    util::BitVec &entry = codewordCache_[fill];
    if (entry.size() == 0)
        entry = onDie_.store(dataWord(fill));
    return entry;
}

bool
ChipModel::storedBitValue(std::uint8_t fill, long stored_bit) const
{
    if (!spec_.onDieEcc)
        return patternBit(fill, static_cast<std::size_t>(stored_bit));

    // All ECC words of a pattern-filled row are identical; read the bit
    // out of the cached per-fill-byte codeword.
    return codeword(fill).get(
        static_cast<std::size_t>(stored_bit % eccCodeBits));
}

std::vector<FlipObservation>
ChipModel::readRow(int bank, int row, util::Rng &rng) const
{
    std::vector<FlipObservation> out;
    readRowInto(bank, row, rng, out);
    return out;
}

void
ChipModel::readRowInto(int bank, int row, util::Rng &rng,
                       std::vector<FlipObservation> &out) const
{
    if (bank < 0 || bank >= geometry_.banks || row < 0 ||
        row >= geometry_.rows) {
        util::panic("ChipModel::readRow: address out of range");
    }

    // An activated row is continuously refreshed: aggressors never show
    // RowHammer flips (Section 5.4).
    if (actEpoch_[flatIndex(bank, physRow(row))] == epoch_)
        return;

    // A row without weak cells cannot flip regardless of exposure; skip
    // the exposure accounting (and the caller's rng is never touched,
    // so this cannot perturb any downstream draw).
    const RowCells &cells = weakCells(bank, row);
    if (cells.empty())
        return;

    const double expo = exposure(bank, row);
    if (expo <= 0.0)
        return;

    const std::uint8_t fill = (row & 1) == victimParity_
                                  ? victimByte(pattern_)
                                  : aggressorByte(pattern_);
    const double polarity = polarityFactor(pattern_);
    const int dp_index = static_cast<int>(pattern_);

    // Raw circuit-level flips (reused scratch keeps this allocation-free
    // after warm-up). The SoA layout scans four parallel arrays; the
    // active pattern's coupling factors are one contiguous run.
    std::vector<long> &raw = rawScratch_;
    raw.clear();
    const std::size_t n = cells.size();
    const float *threshold = cells.thresholds();
    const float *coupling = cells.coupling(dp_index);
    for (std::size_t i = 0; i < n; ++i) {
        const long stored_bit = cells.storedBit(i);
        const bool stored = storedBitValue(fill, stored_bit);
        if (stored != cells.trueCell(i))
            continue; // Discharged state: nothing to leak.
        const double eff =
            expo * polarity * static_cast<double>(coupling[i]);
        const double ratio =
            eff / static_cast<double>(threshold[i]);
        const double p =
            logistic((ratio - 1.0) / spec_.thresholdWidth);
        if (rng.bernoulli(p))
            raw.push_back(stored_bit);
    }
    if (raw.empty())
        return;

    if (!spec_.onDieEcc) {
        // Two sampled weak cells can land on the same stored bit (the
        // cluster model draws bit offsets with replacement); they are
        // the same physical cell, which leaks at most once per read.
        // Emit each bit once, preserving cell order (raw is tiny, so
        // the quadratic seen-scan beats sorting and allocates nothing).
        for (std::size_t i = 0; i < raw.size(); ++i) {
            bool seen = false;
            for (std::size_t j = 0; j < i && !seen; ++j)
                seen = raw[j] == raw[i];
            if (seen)
                continue;
            const bool stored = storedBitValue(fill, raw[i]);
            out.push_back(FlipObservation{bank, row, raw[i], stored});
        }
        return;
    }

    // On-die ECC path: decode each affected stored word and report the
    // post-correction difference from the written data. The per-fill
    // data word and its encoded codeword are cached; the decode input is
    // a codeword copy with this word's raw flips applied.
    std::sort(raw.begin(), raw.end());
    const util::BitVec &data = dataWord(fill);
    std::size_t i = 0;
    while (i < raw.size()) {
        const long word = raw[i] / eccCodeBits;
        std::vector<std::size_t> &in_word = wordScratch_;
        in_word.clear();
        while (i < raw.size() && raw[i] / eccCodeBits == word) {
            in_word.push_back(
                static_cast<std::size_t>(raw[i] % eccCodeBits));
            ++i;
        }
        // Duplicate weak cells on the same stored bit are one physical
        // cell: it leaks once, not twice. Keep one copy.
        std::sort(in_word.begin(), in_word.end());
        in_word.erase(std::unique(in_word.begin(), in_word.end()),
                      in_word.end());

        util::BitVec stored = codeword(fill);
        for (std::size_t bit : in_word)
            stored.flip(bit);
        util::BitVec diff = onDie_.readWord(stored);
        diff ^= data;
        diff.forEachSet([&](std::size_t bit) {
            out.push_back(FlipObservation{
                bank, row,
                word * eccDataBits + static_cast<long>(bit),
                data.get(bit)});
        });
    }
}

std::vector<FlipObservation>
ChipModel::hammerDoubleSided(int bank, int victim_row, std::int64_t hc,
                             DataPattern dp, util::Rng &rng)
{
    const AggressorList aggressors = aggressorRows(victim_row);
    std::array<AggressorDose, 2> doses{};
    for (std::size_t i = 0; i < aggressors.size(); ++i)
        doses[i] = AggressorDose{aggressors[i], hc};
    return hammerRows(
        bank, victim_row,
        std::span<const AggressorDose>(doses.data(), aggressors.size()),
        dp, rng);
}

std::pair<int, int>
ChipModel::blastReadRange(int lo_row, int hi_row) const
{
    const int radius = spec_.maxCouplingDistance + 1;
    const int pair_extra =
        spec_.rowRemap == RowRemap::PairedWordline ? 2 * radius + 1 : 0;
    return {std::max(0, lo_row - radius - pair_extra),
            std::min(geometry_.rows - 1, hi_row + radius + pair_extra)};
}

std::vector<FlipObservation>
ChipModel::hammerRows(int bank, int victim_row,
                      std::span<const AggressorDose> doses, DataPattern dp,
                      util::Rng &rng)
{
    if (doses.empty())
        util::fatal("ChipModel::hammerRows: empty aggressor set");

    writePattern(dp, victim_row & 1);
    refreshRow(bank, victim_row);
    int lo = victim_row;
    int hi = victim_row;
    for (const AggressorDose &dose : doses) {
        if (dose.count < 0)
            util::fatal("ChipModel::hammerRows: negative dose");
        addActivations(bank, dose.row, dose.count);
        lo = std::min(lo, dose.row);
        hi = std::max(hi, dose.row);
    }

    // Read the dosed span plus the coupling blast radius. Rows beyond
    // the radius of every aggressor have zero exposure and consume no
    // randomness, so widening the span is observation-neutral (this is
    // what keeps the two-dose case flip-identical to the historical
    // victim-centered read loop).
    std::vector<FlipObservation> out;
    const auto [read_lo, read_hi] = blastReadRange(lo, hi);
    for (int row = read_lo; row <= read_hi; ++row)
        readRowInto(bank, row, rng, out);
    return out;
}

std::size_t
ChipModel::weakCellCount(int bank, int row) const
{
    return weakCells(bank, row).size();
}

} // namespace rowhammer::fault
