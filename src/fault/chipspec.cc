#include "chipspec.hh"

#include "util/logging.hh"
#include "util/serialize.hh"

namespace rowhammer::fault
{

std::string
toString(Manufacturer mfr)
{
    switch (mfr) {
      case Manufacturer::A:
        return "A";
      case Manufacturer::B:
        return "B";
      case Manufacturer::C:
        return "C";
    }
    util::panic("toString: unknown Manufacturer");
}

std::string
toString(TypeNode tn)
{
    switch (tn) {
      case TypeNode::DDR3Old:
        return "DDR3-old";
      case TypeNode::DDR3New:
        return "DDR3-new";
      case TypeNode::DDR4Old:
        return "DDR4-old";
      case TypeNode::DDR4New:
        return "DDR4-new";
      case TypeNode::LPDDR4_1x:
        return "LPDDR4-1x";
      case TypeNode::LPDDR4_1y:
        return "LPDDR4-1y";
      default:
        util::panic("toString: unknown TypeNode");
    }
}

dram::Standard
standardOf(TypeNode tn)
{
    switch (tn) {
      case TypeNode::DDR3Old:
      case TypeNode::DDR3New:
        return dram::Standard::DDR3;
      case TypeNode::DDR4Old:
      case TypeNode::DDR4New:
        return dram::Standard::DDR4;
      case TypeNode::LPDDR4_1x:
      case TypeNode::LPDDR4_1y:
        return dram::Standard::LPDDR4;
      default:
        util::panic("standardOf: unknown TypeNode");
    }
}

std::string
ChipSpec::label() const
{
    return "Mfr. " + toString(manufacturer) + " " + toString(typeNode);
}

bool
combinationExists(TypeNode tn, Manufacturer mfr)
{
    // The paper could not obtain LPDDR4-1x chips from manufacturer C or
    // LPDDR4-1y chips from manufacturer B (Section 4.2).
    if (tn == TypeNode::LPDDR4_1x && mfr == Manufacturer::C)
        return false;
    if (tn == TypeNode::LPDDR4_1y && mfr == Manufacturer::B)
        return false;
    return true;
}

ChipSpec
configFor(TypeNode tn, Manufacturer mfr)
{
    ChipSpec s;
    s.manufacturer = mfr;
    s.typeNode = tn;

    if (!combinationExists(tn, mfr))
        return s; // minHcFirst stays 0: no chips of this combination.

    using M = Manufacturer;
    using DP = DataPattern;

    switch (tn) {
      case TypeNode::DDR3Old:
        // Table 4: 69.2k / 157k / 155k. Table 2: only 24/88 of Mfr A's
        // chips flip below 150k; none of B's or C's do.
        s.minHcFirst = (mfr == M::A) ? 69200 : (mfr == M::B ? 157000
                                                            : 155000);
        // Mfr A's 24 hammerable chips (24/88, Table 2) are exactly the
        // A7-9 group (3 modules x 8 chips); B and C have none.
        s.rowHammerableFraction = 1.0;
        // Mfr A DDR3 chips show < 20 flips per chip even at HC = 150k.
        s.weakDensityAt150k = (mfr == M::A) ? 4e-9 : 2e-9;
        s.hcFirstSpread = 1.8;
        s.worstPattern = DP::Checkered0;
        break;

      case TypeNode::DDR3New:
        // Table 4: 85k / 22.4k / 24k. Table 2: 8/72, 44/52, 96/104.
        s.minHcFirst = (mfr == M::A) ? 85000 : (mfr == M::B ? 22400
                                                            : 24000);
        // Table 2 fractions (8/72, 44/52, 96/104) over the chips of the
        // groups whose minimum is below 150k (56, 52, and 96 chips).
        s.rowHammerableFraction = (mfr == M::A)   ? 8.0 / 56.0
                                  : (mfr == M::B) ? 44.0 / 52.0
                                                  : 1.0;
        // B/C DDR3-new chips average ~87k flips per chip at HC = 150k.
        s.weakDensityAt150k = (mfr == M::A) ? 4e-9 : 2e-5;
        s.hcFirstSpread = 4.0;
        s.worstPattern = DP::Checkered0; // Table 3 (B and C; A has N/A).
        s.meanClusterSize = 1.15;
        s.clusterThresholdSpread = 0.35;
        // Observation 13: triple-error correction keeps helping DDR3.
        s.eccMultiplier12 = 1.65;
        s.eccMultiplier23 = 2.0;
        break;

      case TypeNode::DDR4Old:
        // Table 4: 17.5k / 30k / 87k.
        s.minHcFirst = (mfr == M::A) ? 17500 : (mfr == M::B ? 30000
                                                            : 87000);
        s.weakDensityAt150k = (mfr == M::A) ? 8e-6
                              : (mfr == M::B) ? 5e-6 : 8e-7;
        s.hcFirstSpread = 5.0;
        s.worstPattern = (mfr == M::C) ? DP::RowStripe0 : DP::RowStripe1;
        s.meanClusterSize = 1.25;
        s.clusterThresholdSpread = 1.2;
        // Observation 12-13: SEC buys up to ~2.78x on DDR4; the gain
        // from double- to triple-error correction diminishes.
        s.eccMultiplier12 = 2.6;
        s.eccMultiplier23 = 1.35;
        break;

      case TypeNode::DDR4New:
        // Table 4: 10k / 25k / 40k.
        s.minHcFirst = (mfr == M::A) ? 10000 : (mfr == M::B ? 25000
                                                            : 40000);
        s.weakDensityAt150k = (mfr == M::A) ? 3e-5
                              : (mfr == M::B) ? 1.5e-5 : 8e-6;
        s.hcFirstSpread = 6.0;
        s.worstPattern = (mfr == M::C) ? DP::Checkered1 : DP::RowStripe0;
        s.meanClusterSize = 1.25;
        s.clusterThresholdSpread = 1.2;
        s.eccMultiplier12 = 2.6;
        s.eccMultiplier23 = 1.35;
        break;

      case TypeNode::LPDDR4_1x:
        // Table 4: 43.2k (A) / 16.8k (B).
        s.minHcFirst = (mfr == M::A) ? 43200 : 16800;
        s.weakDensityAt150k = (mfr == M::A) ? 5e-5 : 8e-5;
        s.hcFirstSpread = 3.0;
        s.worstPattern =
            (mfr == M::A) ? DP::Checkered1 : DP::Checkered0;
        s.onDieEcc = true;
        s.meanClusterSize = 2.4;
        s.clusterThresholdSpread = 0.8;
        s.thresholdWidth = 0.042;
        s.distance3Coupling = 0.30;
        s.maxCouplingDistance = 3;
        if (mfr == M::B)
            s.rowRemap = RowRemap::PairedWordline;
        break;

      case TypeNode::LPDDR4_1y:
        // Table 4: 4.8k (A) / 9.6k (C).
        s.minHcFirst = (mfr == M::A) ? 4800 : 9600;
        s.weakDensityAt150k = (mfr == M::A) ? 3e-4 : 2e-4;
        s.hcFirstSpread = 8.0;
        s.worstPattern = DP::RowStripe1;
        s.onDieEcc = true;
        s.meanClusterSize = 2.6;
        s.clusterThresholdSpread = 0.8;
        s.thresholdWidth = 0.042;
        s.distance3Coupling = 0.45;
        s.distance5Coupling = 0.20;
        s.maxCouplingDistance = 5;
        break;

      default:
        util::panic("configFor: unknown TypeNode");
    }
    return s;
}

void
ChipSpec::serialize(util::ByteWriter &w) const
{
    w.i64(static_cast<int>(manufacturer));
    w.i64(static_cast<int>(typeNode));
    w.f64(minHcFirst);
    w.f64(hcFirstSpread);
    w.f64(rowHammerableFraction);
    w.f64(weakDensityAt150k);
    w.f64(distance3Coupling);
    w.f64(distance5Coupling);
    w.i64(maxCouplingDistance);
    w.i64(static_cast<int>(worstPattern));
    w.u8(onDieEcc ? 1 : 0);
    w.f64(meanClusterSize);
    w.f64(clusterThresholdSpread);
    w.f64(eccMultiplier12);
    w.f64(eccMultiplier23);
    w.i64(static_cast<int>(rowRemap));
    w.f64(trueCellFraction);
    w.f64(thresholdWidth);
}

std::uint64_t
ChipSpec::hash() const
{
    util::ByteWriter w;
    serialize(w);
    return util::fnv1a64(w.bytes());
}

ChipSpec
ChipSpec::deserialize(util::ByteReader &r)
{
    ChipSpec s;
    s.manufacturer = static_cast<Manufacturer>(r.i64());
    s.typeNode = static_cast<TypeNode>(r.i64());
    s.minHcFirst = r.f64();
    s.hcFirstSpread = r.f64();
    s.rowHammerableFraction = r.f64();
    s.weakDensityAt150k = r.f64();
    s.distance3Coupling = r.f64();
    s.distance5Coupling = r.f64();
    s.maxCouplingDistance = static_cast<int>(r.i64());
    s.worstPattern = static_cast<DataPattern>(r.i64());
    s.onDieEcc = r.u8() != 0;
    s.meanClusterSize = r.f64();
    s.clusterThresholdSpread = r.f64();
    s.eccMultiplier12 = r.f64();
    s.eccMultiplier23 = r.f64();
    s.rowRemap = static_cast<RowRemap>(r.i64());
    s.trueCellFraction = r.f64();
    s.thresholdWidth = r.f64();
    return s;
}

} // namespace rowhammer::fault
