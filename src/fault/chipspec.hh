/**
 * @file
 * Chip-configuration metadata: DRAM type-node configurations, the three
 * (anonymized) manufacturers, and the per-configuration circuit-behaviour
 * parameters that drive the fault model. The parameter values encode the
 * paper's published measurements (Tables 2-5, Figures 4-9) so that a
 * simulated population re-derives those results.
 */

#ifndef ROWHAMMER_FAULT_CHIPSPEC_HH
#define ROWHAMMER_FAULT_CHIPSPEC_HH

#include <cstdint>
#include <string>

#include "dram/types.hh"
#include "fault/datapattern.hh"

namespace rowhammer::util
{
class ByteWriter;
class ByteReader;
} // namespace rowhammer::util

namespace rowhammer::fault
{

/** The three anonymized DRAM manufacturers. */
enum class Manufacturer
{
    A,
    B,
    C,
};

/** Printable name: "A", "B", "C". */
std::string toString(Manufacturer mfr);

/** The six DRAM type-node configurations of Table 1. */
enum class TypeNode
{
    DDR3Old,
    DDR3New,
    DDR4Old,
    DDR4New,
    LPDDR4_1x,
    LPDDR4_1y,
    NumTypeNodes,
};

constexpr int numTypeNodes = static_cast<int>(TypeNode::NumTypeNodes);

/** Printable name matching the paper, e.g. "DDR4-new", "LPDDR4-1x". */
std::string toString(TypeNode tn);

/** DRAM standard of a type-node configuration. */
dram::Standard standardOf(TypeNode tn);

/** Logical-to-physical row remapping behaviours seen in tested chips. */
enum class RowRemap
{
    None,            ///< Logical row == physical wordline.
    PairedWordline,  ///< Consecutive logical row pairs share a wordline
                     ///< (observed in Mfr B LPDDR4-1x chips, Section 4.3).
};

/**
 * Circuit-behaviour parameters of one (manufacturer, type-node) chip
 * configuration. One ChipSpec describes the *distribution* chips are
 * drawn from; each ChipModel instance samples its own cells from it.
 */
struct ChipSpec
{
    Manufacturer manufacturer = Manufacturer::A;
    TypeNode typeNode = TypeNode::DDR4New;

    /**
     * Minimum HCfirst across all chips of this configuration, in hammers
     * (Table 4; 0 means no configuration-level data and chips default to
     * not RowHammerable below 150k).
     */
    double minHcFirst = 0.0;

    /**
     * Multiplicative spread of per-chip HCfirst above the configuration
     * minimum (Figure 8 box heights): a chip's HCfirst is sampled in
     * [minHcFirst, minHcFirst * hcFirstSpread].
     */
    double hcFirstSpread = 4.0;

    /**
     * Fraction of chips *within a module group whose minimum HCfirst is
     * below 150k* that are themselves RowHammerable. Table 2's
     * config-level fractions emerge from this: e.g. Mfr A DDR3-old has
     * 24/88 RowHammerable chips and exactly 24 chips in its one
     * hammerable group (A7-9), so the within-group fraction is 1.0.
     */
    double rowHammerableFraction = 1.0;

    /**
     * Expected RowHammer bit flips per data bit at HC = 150k with the
     * worst-case pattern (sets the vertical position of the Figure 5
     * curve). Mfr A DDR3 chips are distinctively low (< 20 flips/chip).
     */
    double weakDensityAt150k = 1e-5;

    /**
     * Coupling strength to a row at wordline distance 3 (distance 1 is
     * normalized to 1.0; even distances do not flip per Observation in
     * Section 5.4).
     */
    double distance3Coupling = 0.0;

    /** Coupling strength at wordline distance 5 (LPDDR4-1y only). */
    double distance5Coupling = 0.0;

    /** Largest wordline distance with any coupling (1, 3, or 5). */
    int maxCouplingDistance = 1;

    /** Chip-wide worst-case data pattern (Table 3). */
    DataPattern worstPattern = DataPattern::RowStripe0;

    /** Whether the chip has always-on on-die ECC (all LPDDR4 chips). */
    bool onDieEcc = false;

    /**
     * Mean raw-bit-flip cluster size. On-die-ECC chips exhibit spatially
     * clustered weak cells so multi-bit ECC words are common (Figure 7);
     * non-ECC chips are dominated by isolated weak cells.
     */
    double meanClusterSize = 1.0;

    /**
     * Relative spread of thresholds within a weak-cell cluster: member
     * thresholds are base * (1 + U[0, spread]).
     */
    double clusterThresholdSpread = 0.5;

    /**
     * Hammer-count multiplier from the chip's HCfirst to the first
     * 64-bit word with two flips (Figure 9's x(1->2); i.e. the HCfirst
     * improvement a SEC 64-bit ECC buys). Zero = the chip's weakest
     * word never reaches two flips below 200k hammers.
     */
    double eccMultiplier12 = 0.0;

    /** Multiplier from two- to three-flip words (Figure 9's x(2->3)). */
    double eccMultiplier23 = 0.0;

    /** Logical-to-physical row remapping of this configuration. */
    RowRemap rowRemap = RowRemap::None;

    /** Fraction of cells whose charged state encodes logical '1'. */
    double trueCellFraction = 0.5;

    /**
     * Relative width of the probabilistic flip region around a cell's
     * threshold (logistic scale as a fraction of the threshold).
     * DDR3/DDR4 cells transition sharply (Table 5: > 97% of cells have
     * monotonically increasing flip probability at a 5k-hammer sweep
     * granularity); LPDDR4 cells sit behind on-die ECC whose aliasing
     * amplifies threshold noise into the ~50% monotonicity the paper
     * measures.
     */
    double thresholdWidth = 0.008;

    dram::Standard standard() const { return standardOf(typeNode); }

    /** "Mfr. X TYPE-node" label used in tables. */
    std::string label() const;

    /** Append the bit-stable encoding of every field (run-description
     *  schema; see util/serialize.hh for the stability contract). */
    void serialize(util::ByteWriter &w) const;

    /** FNV-1a content hash of serialize()'s bytes. */
    std::uint64_t hash() const;

    /** Rebuild from serialize()'s bytes; check r.ok() afterwards. */
    static ChipSpec deserialize(util::ByteReader &r);
};

/**
 * The calibrated ChipSpec for a (type-node, manufacturer) pair. Returns a
 * spec with minHcFirst == 0 for the combinations the paper has no chips
 * for (LPDDR4-1x Mfr C, LPDDR4-1y Mfr B).
 */
ChipSpec configFor(TypeNode tn, Manufacturer mfr);

/** True iff the paper has chips for this combination. */
bool combinationExists(TypeNode tn, Manufacturer mfr);

} // namespace rowhammer::fault

#endif // ROWHAMMER_FAULT_CHIPSPEC_HH
