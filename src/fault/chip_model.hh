/**
 * @file
 * Circuit-level RowHammer fault model of one DRAM chip.
 *
 * The model is the repository's substitute for the paper's real silicon:
 * each chip instance deterministically samples a sparse population of
 * "weak" cells (cells whose RowHammer threshold falls below the tested
 * hammer-count range), each with a threshold, a charge orientation
 * (true-/anti-cell), and per-data-pattern coupling strengths. Hammering
 * accumulates exposure on physical wordlines; reading a row evaluates
 * which weak cells have leaked past their threshold, with a narrow
 * logistic probabilistic region around the threshold (Section 5.6).
 *
 * LPDDR4 chips route every read through an always-on on-die (136,128) SEC
 * ECC, so the observed flips differ from the raw circuit-level flips
 * exactly as the paper describes (Observations 9 and 14).
 *
 * Determinism contract: weak-cell populations depend only on (seed, bank,
 * row), so re-testing a row reproduces the same cells; per-read flip
 * randomness comes from the caller-supplied Rng.
 */

#ifndef ROWHAMMER_FAULT_CHIP_MODEL_HH
#define ROWHAMMER_FAULT_CHIP_MODEL_HH

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "ecc/ondie.hh"
#include "fault/chipspec.hh"
#include "fault/datapattern.hh"
#include "util/rng.hh"

namespace rowhammer::fault
{

/** One observed RowHammer bit flip. */
struct FlipObservation
{
    int bank = 0;
    int row = 0;          ///< Logical row containing the flip.
    long bitIndex = 0;    ///< Data-bit index within the row.
    bool oneToZero = false; ///< Direction: true if a stored 1 became 0.

    auto operator<=>(const FlipObservation &) const = default;
};

/**
 * One weighted aggressor of a multi-aggressor hammer: a row and how many
 * activations it receives. N-sided and frequency-fuzzed attack patterns
 * (attack::PatternBuilder) reduce to a set of these per hammer session.
 */
struct AggressorDose
{
    int row = 0;
    std::int64_t count = 0;
};

/** Fixed-capacity aggressor-row list (at most two rows, no allocation). */
struct AggressorList
{
    std::array<int, 2> rows{};
    int count = 0;

    const int *begin() const { return rows.data(); }
    const int *end() const { return rows.data() + count; }
    std::size_t size() const { return static_cast<std::size_t>(count); }
    int operator[](std::size_t i) const { return rows[i]; }
    void push(int row) { rows[static_cast<std::size_t>(count++)] = row; }
};

/** Geometry of the simulated chip's cell array. */
struct ChipGeometry
{
    int banks = 8;
    int rows = 16384;
    long rowDataBits = 65536; ///< 8 KB row.

    /** Append the bit-stable encoding of every field (run-description
     *  schema; see util/serialize.hh). */
    void serialize(util::ByteWriter &w) const;

    /** FNV-1a content hash of serialize()'s bytes. */
    std::uint64_t hash() const;

    /** Rebuild from serialize()'s bytes; check r.ok() afterwards. */
    static ChipGeometry deserialize(util::ByteReader &r);
};

/**
 * One simulated DRAM chip. See the file comment for the model; the
 * public interface mirrors what the paper's FPGA platform offers the
 * characterization code: fill with a pattern, hammer, read back flips.
 *
 * Instances are not thread-safe (even const reads mutate internal
 * caches): parallel population runs must give each thread its own
 * ChipModel (see charlib::PopulationRunner).
 */
class ChipModel
{
  public:
    /**
     * @param spec Configuration-level behaviour parameters.
     * @param chip_hc_first This chip's true minimum RowHammer threshold
     *     in hammers (the quantity HCfirst estimates).
     * @param seed Chip identity; determines all cell sampling.
     * @param geometry Cell-array dimensions.
     */
    ChipModel(ChipSpec spec, double chip_hc_first, std::uint64_t seed,
              ChipGeometry geometry = ChipGeometry{});

    const ChipSpec &spec() const { return spec_; }
    const ChipGeometry &geometry() const { return geometry_; }

    /** The chip's ground-truth minimum threshold (test oracle). */
    double trueHcFirst() const { return hcFirst_; }

    /**
     * Bank/row containing the chip's weakest cell. The paper scans every
     * row of every chip; our benches scan a sample of rows plus this row
     * so chip-level HCfirst is measured rather than sampled away.
     */
    int weakestRow() const { return weakestRow_; }
    int weakestBank() const { return weakestBank_; }

    /**
     * Aggressor rows for a double-sided hammer of `victim_row`, honoring
     * the chip's logical-to-physical remapping (Mfr B LPDDR4-1x chips
     * require hammering victim +/- 2; all others victim +/- 1).
     */
    AggressorList aggressorRows(int victim_row) const;

    /**
     * Fill the whole array with a data pattern. Rows whose parity equals
     * `victim_parity` receive the pattern's victim byte; other rows its
     * aggressor byte. Clears all accumulated exposure.
     */
    void writePattern(DataPattern dp, int victim_parity);

    /** Currently written pattern. */
    DataPattern pattern() const { return pattern_; }

    /** Record `count` activations of a logical row (accumulates). */
    void addActivations(int bank, int row, std::int64_t count);

    /** Refresh one row: restores charge, zeroing its exposure so far. */
    void refreshRow(int bank, int row);

    /** Accumulated double-sided-equivalent exposure of a row, in hammers. */
    double exposure(int bank, int row) const;

    /**
     * Read a row and report observed RowHammer bit flips given current
     * exposure. For on-die-ECC chips this is the post-correction view.
     * Rows that were themselves activated since the last pattern write
     * report no flips (activation refreshes the row).
     */
    std::vector<FlipObservation> readRow(int bank, int row,
                                         util::Rng &rng) const;

    /** readRow appending into a caller-owned vector (hot-path variant). */
    void readRowInto(int bank, int row, util::Rng &rng,
                     std::vector<FlipObservation> &out) const;

    /**
     * Convenience for the common kernel: write pattern, refresh victim,
     * hammer both aggressors `hc` times each, and read the victim row
     * plus all rows within the coupling blast radius.
     */
    std::vector<FlipObservation> hammerDoubleSided(int bank, int victim_row,
                                                   std::int64_t hc,
                                                   DataPattern dp,
                                                   util::Rng &rng);

    /**
     * Generalized hammer kernel for weighted aggressor sets: write the
     * pattern, refresh the victim, apply every dose, and read back every
     * row within the coupling radius of the dosed span. The double-sided
     * kernel is the two-dose special case; N-sided and fuzzed patterns
     * pass larger sets. Rows are read in ascending order; rows with zero
     * exposure consume no randomness, so adding far-away decoy doses
     * does not perturb the flips of unrelated rows.
     */
    std::vector<FlipObservation> hammerRows(
        int bank, int victim_row, std::span<const AggressorDose> doses,
        DataPattern dp, util::Rng &rng);

    /**
     * Inclusive row range to read back after hammering rows in
     * [lo_row, hi_row]: the hammered span plus the coupling blast
     * radius (plus the paired-wordline margin), clamped to the array.
     * Every multi-aggressor read-back loop (hammerRows, the softmc
     * tester, the attack session) derives its span from this one
     * helper so their byte-identical flip contracts stay in lockstep.
     */
    std::pair<int, int> blastReadRange(int lo_row, int hi_row) const;

    /**
     * Logical distance between a victim and its nearest aggressor under
     * this chip's row remapping (1, or 2 for paired-wordline chips).
     */
    int aggressorStep() const
    {
        return spec_.rowRemap == RowRemap::PairedWordline ? 2 : 1;
    }

    /** Number of weak cells sampled in a row (test/instrumentation). */
    std::size_t weakCellCount(int bank, int row) const;

  private:
    /** One weak cell of the simulated array (sampling scratch; cached
     *  rows store the same data in RowCells' SoA layout). */
    struct WeakCell
    {
        long storedBit; ///< Bit index in stored space (incl. ECC parity).
        float threshold; ///< Double-sided hammers to flip, worst pattern.
        bool trueCell;   ///< Charged state encodes logical 1.
        std::array<float, numDataPatterns> coupling; ///< Per-DP factor.
    };

    /**
     * Weak cells of one row, structure-of-arrays: the readRow hot loop
     * scans parallel lanes instead of striding over 40-byte cell
     * records, and the per-pattern coupling lanes are pattern-major so
     * a fixed-pattern read touches one contiguous run per row. Rows
     * hold only a handful of weak cells, so the lanes share two
     * backing allocations (an integer one and a float one) rather
     * than one vector each — fewer pointer loads and touched cache
     * lines per read; the accessors hide the packing.
     */
    struct RowCells
    {
        /** Per cell: storedBit << 1 | (trueCell ? 1 : 0). */
        std::vector<long> bits;
        /** [threshold: n][coupling DP 0: n]...[coupling DP P-1: n]. */
        std::vector<float> lanes;

        std::size_t size() const { return bits.size(); }
        bool empty() const { return bits.empty(); }

        long storedBit(std::size_t i) const { return bits[i] >> 1; }
        bool trueCell(std::size_t i) const { return (bits[i] & 1) != 0; }
        const float *thresholds() const { return lanes.data(); }
        const float *coupling(int dp) const
        {
            return lanes.data() +
                static_cast<std::size_t>(dp + 1) * size();
        }
    };

    /** Physical wordline of a logical row under the chip's remap. */
    int physRow(int row) const;

    /** Stored bits per row (data + on-die ECC parity if present). */
    long rowStoredBits() const;

    /** Lazily sample (and cache) the weak cells of one row. */
    const RowCells &weakCells(int bank, int row) const;

    /** Sample one weak cell at the given stored-bit anchor. */
    WeakCell sampleCell(util::Rng &rng, long stored_bit,
                        double threshold) const;

    /** Sample a threshold from the chip's power-law CDF. */
    double sampleThreshold(util::Rng &rng) const;

    /** Stored bit value at stored index under the current fill byte. */
    bool storedBitValue(std::uint8_t fill, long stored_bit) const;

    /** Cached plain data word (eccDataBits wide) filled with `fill`. */
    const util::BitVec &dataWord(std::uint8_t fill) const;

    /** Cached on-die-ECC codeword of a `fill`-filled data word. */
    const util::BitVec &codeword(std::uint8_t fill) const;

    /** Flat index of a (bank, row) pair. */
    std::size_t flatIndex(int bank, int row) const
    {
        return static_cast<std::size_t>(bank) *
            static_cast<std::size_t>(geometry_.rows) +
            static_cast<std::size_t>(row);
    }

    ChipSpec spec_;
    ChipGeometry geometry_;
    double hcFirst_;
    std::uint64_t seed_;
    int weakestBank_ = 0;
    int weakestRow_ = 0;
    double powerLawK_ = 4.0; ///< Threshold-CDF exponent (calibrated).

    ecc::OnDieEcc onDie_;
    DataPattern pattern_ = DataPattern::RowStripe0;
    int victimParity_ = 0;

    /**
     * Flat per-(bank, row) accumulation state. Entries are valid only
     * when their epoch matches epoch_; writePattern() invalidates the
     * whole array in O(1) by bumping the epoch instead of clearing.
     */
    std::vector<std::int64_t> actCount_;    ///< Per (bank, wordline).
    std::vector<std::uint32_t> actEpoch_;
    std::vector<double> refreshBase_;       ///< Per (bank, logical row).
    std::vector<std::uint32_t> refreshEpoch_;
    std::uint32_t epoch_ = 1;

    /**
     * Open-addressed cache of sampled weak-cell rows: cellKeys_ holds
     * flatIndex+1 (0 = empty slot), cellSlots_ the index of the row's
     * cells in cellStore_ (a deque so returned references stay stable
     * across later insertions). Power-of-two capacity, linear probing.
     */
    mutable std::vector<std::uint64_t> cellKeys_;
    mutable std::vector<std::uint32_t> cellSlots_;
    mutable std::size_t cellCount_ = 0;
    mutable std::deque<RowCells> cellStore_;

    /** Per-fill-byte caches of the data word and encoded codeword. */
    mutable std::array<util::BitVec, 256> dataWordCache_;
    mutable std::array<util::BitVec, 256> codewordCache_;

    /** Reused readRow scratch; makes the hot path allocation-free. */
    mutable std::vector<long> rawScratch_;
    mutable std::vector<std::size_t> wordScratch_;

    /** Grow-and-rehash of the weak-cell cache table. */
    void growCellTable() const;

    /** Raw (pre-baseline) exposure of a row's wordline, in hammers. */
    double rawExposure(int bank, int row) const;
};

} // namespace rowhammer::fault

#endif // ROWHAMMER_FAULT_CHIP_MODEL_HH
