/**
 * @file
 * The DRAM data patterns the paper sweeps (Section 4.3): solid, column
 * stripe, checkered, and row stripe, each in both polarities. A pattern
 * fixes the byte written to the victim row and the byte written to the
 * aggressor (and all other) rows; checkered/rowstripe write the inverse
 * byte into alternating rows.
 */

#ifndef ROWHAMMER_FAULT_DATAPATTERN_HH
#define ROWHAMMER_FAULT_DATAPATTERN_HH

#include <array>
#include <cstdint>
#include <string>

#include "util/logging.hh"

namespace rowhammer::fault
{

/** The eight data patterns of Section 4.3. */
enum class DataPattern
{
    Solid0,      ///< victim 0x00, aggressors 0x00.
    Solid1,      ///< victim 0xFF, aggressors 0xFF.
    ColStripe0,  ///< victim 0x55, aggressors 0x55.
    ColStripe1,  ///< victim 0xAA, aggressors 0xAA.
    Checkered0,  ///< victim 0x55, aggressors 0xAA.
    Checkered1,  ///< victim 0xAA, aggressors 0x55.
    RowStripe0,  ///< victim 0x00, aggressors 0xFF.
    RowStripe1,  ///< victim 0xFF, aggressors 0x00.
    NumPatterns,
};

constexpr int numDataPatterns = static_cast<int>(DataPattern::NumPatterns);

/** All patterns, in declaration order. */
std::array<DataPattern, numDataPatterns> allDataPatterns();

/**
 * The six patterns Figure 4 sweeps (RS0, RS1, CS0, CS1, CH0, CH1); the
 * solid patterns are strictly dominated and the figure omits them.
 */
std::array<DataPattern, 6> figure4Patterns();

/** Byte written to every byte of the victim row. */
inline std::uint8_t
victimByte(DataPattern dp)
{
    constexpr std::array<std::uint8_t, numDataPatterns> table{
        0x00, 0xFF, 0x55, 0xAA, 0x55, 0xAA, 0x00, 0xFF};
    if (static_cast<std::size_t>(dp) >= table.size())
        util::panic("victimByte: unknown pattern");
    return table[static_cast<std::size_t>(dp)];
}

/** Byte written to every byte of the aggressor (and alternate) rows. */
inline std::uint8_t
aggressorByte(DataPattern dp)
{
    constexpr std::array<std::uint8_t, numDataPatterns> table{
        0x00, 0xFF, 0x55, 0xAA, 0xAA, 0x55, 0xFF, 0x00};
    if (static_cast<std::size_t>(dp) >= table.size())
        util::panic("aggressorByte: unknown pattern");
    return table[static_cast<std::size_t>(dp)];
}

/** Short name used in figures, e.g. "RS0", "CH1". */
std::string toString(DataPattern dp);

/** Value of bit `bit_index` within a row filled with `fill_byte`. */
inline bool
patternBit(std::uint8_t fill_byte, std::size_t bit_index)
{
    return (fill_byte >> (bit_index % 8)) & 1;
}

} // namespace rowhammer::fault

#endif // ROWHAMMER_FAULT_DATAPATTERN_HH
