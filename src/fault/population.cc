#include "population.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/serialize.hh"

namespace rowhammer::fault
{

namespace
{

using M = Manufacturer;
using TN = TypeNode;

ModuleGroup
group(M mfr, TN tn, const char *range, int count, const char *date,
      int freq, double trc, int size, int chips, int pins,
      std::optional<double> hc_first_k)
{
    ModuleGroup g;
    g.manufacturer = mfr;
    g.typeNode = tn;
    g.moduleRange = range;
    g.moduleCount = count;
    g.dateCode = date;
    g.freqMts = freq;
    g.trcNs = trc;
    g.sizeGb = size;
    g.chipsPerModule = chips;
    g.pinWidth = pins;
    if (hc_first_k)
        g.minHcFirst = *hc_first_k * 1000.0;
    return g;
}

std::uint64_t
hashString(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

std::vector<ModuleGroup>
table7Ddr4Modules()
{
    // Appendix Table 7: 110 DDR4 modules, sorted by manufacture date.
    return {
        // Manufacturer A.
        group(M::A, TN::DDR4Old, "A0-15", 16, "17-08", 2133, 47.06, 4, 8,
              8, 17.5),
        group(M::A, TN::DDR4New, "A16-18", 3, "19-19", 2400, 46.16, 4, 4,
              16, 12.5),
        group(M::A, TN::DDR4New, "A19-24", 6, "19-36", 2666, 46.25, 4, 4,
              16, 10.0),
        group(M::A, TN::DDR4New, "A25-33", 9, "19-45", 2666, 46.25, 4, 4,
              16, 10.0),
        group(M::A, TN::DDR4New, "A34-36", 3, "19-51", 2133, 46.5, 8, 8,
              8, 10.0),
        group(M::A, TN::DDR4New, "A37-46", 10, "20-07", 2400, 46.16, 8, 8,
              8, 12.5),
        group(M::A, TN::DDR4New, "A47-58", 12, "20-08", 2133, 46.5, 4, 8,
              8, 10.0),
        // Manufacturer B.
        group(M::B, TN::DDR4Old, "B0-2", 3, "N/A", 2133, 46.5, 4, 8, 8,
              30.0),
        group(M::B, TN::DDR4New, "B3-4", 2, "N/A", 2133, 46.5, 4, 8, 8,
              25.0),
        // Manufacturer C.
        group(M::C, TN::DDR4Old, "C0-7", 8, "16-48", 2133, 46.5, 4, 8, 8,
              147.5),
        group(M::C, TN::DDR4Old, "C8-17", 10, "17-12", 2133, 46.5, 4, 8,
              8, 87.0),
        group(M::C, TN::DDR4New, "C45", 1, "19-01", 2400, 45.75, 8, 8, 8,
              54.0),
        group(M::C, TN::DDR4New, "C44", 1, "19-06", 2400, 45.75, 8, 8, 8,
              63.0),
        group(M::C, TN::DDR4New, "C34", 1, "19-11", 2400, 45.75, 4, 4,
              16, 62.5),
        group(M::C, TN::DDR4New, "C35-36", 2, "19-23", 2400, 45.75, 4, 4,
              16, 63.0),
        group(M::C, TN::DDR4New, "C37-43", 7, "19-44", 2133, 46.5, 8, 8,
              8, 57.5),
        group(M::C, TN::DDR4New, "C18-27", 10, "19-48", 2400, 45.75, 8, 8,
              8, 52.5),
        group(M::C, TN::DDR4New, "C28-33", 6, "N/A", 2666, 46.5, 4, 8, 4,
              40.0),
    };
}

std::vector<ModuleGroup>
table8Ddr3Modules()
{
    // Appendix Table 8: 60 DDR3 modules, sorted by manufacture date.
    return {
        // Manufacturer A.
        group(M::A, TN::DDR3Old, "A0", 1, "10-19", 1066, 50.625, 1, 8, 8,
              155.0),
        group(M::A, TN::DDR3Old, "A1", 1, "10-40", 1333, 49.5, 2, 8, 8,
              std::nullopt),
        group(M::A, TN::DDR3Old, "A2-6", 5, "12-11", 1866, 47.91, 2, 8, 8,
              156.0),
        group(M::A, TN::DDR3Old, "A7-9", 3, "12-32", 1600, 48.75, 2, 8, 8,
              69.2),
        group(M::A, TN::DDR3New, "A10-16", 7, "14-16", 1600, 48.75, 4, 8,
              8, 85.0),
        group(M::A, TN::DDR3New, "A17-18", 2, "14-26", 1600, 48.75, 2, 4,
              16, 160.0),
        group(M::A, TN::DDR3New, "A19", 1, "15-23", 1600, 48.75, 8, 16, 4,
              155.0),
        // Manufacturer B.
        group(M::B, TN::DDR3Old, "B0-1", 2, "10-48", 1333, 49.5, 1, 8, 8,
              std::nullopt),
        group(M::B, TN::DDR3Old, "B2-4", 3, "11-42", 1333, 49.5, 2, 8, 8,
              std::nullopt),
        group(M::B, TN::DDR3Old, "B5-6", 2, "12-24", 1600, 48.75, 2, 8, 8,
              157.0),
        group(M::B, TN::DDR3Old, "B7-10", 4, "13-51", 1600, 48.75, 4, 8,
              8, std::nullopt),
        group(M::B, TN::DDR3New, "B11-14", 4, "15-22", 1600, 50.625, 4, 8,
              8, 33.5),
        group(M::B, TN::DDR3New, "B15-19", 5, "15-25", 1600, 48.75, 2, 4,
              16, 22.4),
        // Manufacturer C.
        group(M::C, TN::DDR3Old, "C0-6", 7, "10-43", 1333, 49.125, 1, 4,
              16, 155.0),
        group(M::C, TN::DDR3New, "C7", 1, "15-04", 1600, 48.75, 4, 8, 8,
              std::nullopt),
        group(M::C, TN::DDR3New, "C8-12", 5, "15-46", 1600, 48.75, 2, 8,
              8, 33.5),
        group(M::C, TN::DDR3New, "C13-19", 7, "17-03", 1600, 48.75, 4, 8,
              8, 24.0),
    };
}

std::vector<ModuleGroup>
lpddr4Modules()
{
    // Table 1 counts with Table 4 minimum HCfirst values. The LPDDR4
    // testing infrastructure is proprietary, so the paper publishes no
    // per-module appendix table; module-level attributes below carry the
    // type-level data only.
    return {
        group(M::A, TN::LPDDR4_1x, "LP1x-A0-2", 3, "N/A", 3200, 60.0, 2,
              4, 16, 43.2),
        group(M::B, TN::LPDDR4_1x, "LP1x-B0-44", 45, "N/A", 3200, 60.0,
              2, 4, 16, 16.8),
        group(M::A, TN::LPDDR4_1y, "LP1y-A0-45", 46, "N/A", 3200, 60.0,
              2, 4, 16, 4.8),
        group(M::C, TN::LPDDR4_1y, "LP1y-C0-35", 36, "N/A", 3200, 60.0,
              2, 4, 16, 9.6),
    };
}

std::vector<ModuleGroup>
allModules()
{
    std::vector<ModuleGroup> out = table8Ddr3Modules();
    auto ddr4 = table7Ddr4Modules();
    out.insert(out.end(), ddr4.begin(), ddr4.end());
    auto lp = lpddr4Modules();
    out.insert(out.end(), lp.begin(), lp.end());
    return out;
}

ChipModel
ChipInstance::makeModel(ChipGeometry geometry) const
{
    return ChipModel(spec, hcFirst, seed, geometry);
}

void
ChipInstance::serialize(util::ByteWriter &w) const
{
    spec.serialize(w);
    w.str(moduleId);
    w.i64(chipIndex);
    w.f64(hcFirst);
    w.u8(rowHammerable ? 1 : 0);
    w.u64(seed);
}

std::uint64_t
ChipInstance::hash() const
{
    util::ByteWriter w;
    serialize(w);
    return util::fnv1a64(w.bytes());
}

ChipInstance
ChipInstance::deserialize(util::ByteReader &r)
{
    ChipInstance c;
    c.spec = ChipSpec::deserialize(r);
    c.moduleId = r.str();
    c.chipIndex = static_cast<int>(r.i64());
    c.hcFirst = r.f64();
    c.rowHammerable = r.u8() != 0;
    c.seed = r.u64();
    return c;
}

std::vector<ChipInstance>
sampleChips(const ModuleGroup &g, std::uint64_t seed, int chips_per_group)
{
    const ChipSpec spec = configFor(g.typeNode, g.manufacturer);
    if (!combinationExists(g.typeNode, g.manufacturer))
        util::panic("sampleChips: nonexistent chip combination");

    util::Rng rng(seed ^ hashString(g.moduleRange) ^
                  (static_cast<std::uint64_t>(g.typeNode) << 32) ^
                  (static_cast<std::uint64_t>(g.manufacturer) << 48));

    const int total = std::min(chips_per_group,
                               g.moduleCount * g.chipsPerModule);
    std::vector<ChipInstance> out;
    out.reserve(static_cast<std::size_t>(total));

    // The group's published minimum HCfirst belongs to its weakest chip;
    // "N/A" groups have no observable flips below the 150k sweep limit.
    const double group_min =
        g.minHcFirst.value_or(200000.0 + 150000.0 * rng.uniform());
    const bool group_hammerable = group_min < 150000.0;

    for (int i = 0; i < total; ++i) {
        ChipInstance chip;
        chip.spec = spec;
        chip.moduleId = toString(g.typeNode) + "-" + g.moduleRange;
        chip.chipIndex = i;
        chip.seed = rng.split(static_cast<std::uint64_t>(i))();

        // Table 2: only a fraction of the chips in below-150k groups
        // are RowHammerable. The first chip of a hammerable group is
        // pinned to the group minimum so the published value is
        // reproduced exactly.
        const bool hammerable = group_hammerable &&
            (i == 0 || rng.bernoulli(spec.rowHammerableFraction));
        if (!hammerable) {
            chip.hcFirst = 160000.0 + 240000.0 * rng.uniform();
            chip.rowHammerable = false;
        } else if (i == 0) {
            chip.hcFirst = group_min;
            chip.rowHammerable = true;
        } else {
            // Spread per Figure 8: log-uniform above the group minimum.
            const double spread = std::max(1.05, spec.hcFirstSpread);
            chip.hcFirst = group_min *
                std::exp(rng.uniform() * std::log(spread));
            chip.rowHammerable = chip.hcFirst < 150000.0;
        }
        out.push_back(std::move(chip));
    }
    return out;
}

std::vector<ChipInstance>
sampleConfigChips(TypeNode tn, std::optional<Manufacturer> mfr,
                  std::uint64_t seed, int chips_per_group)
{
    std::vector<ChipInstance> out;
    for (const ModuleGroup &g : allModules()) {
        if (g.typeNode != tn)
            continue;
        if (mfr && g.manufacturer != *mfr)
            continue;
        auto chips = sampleChips(g, seed, chips_per_group);
        out.insert(out.end(), std::make_move_iterator(chips.begin()),
                   std::make_move_iterator(chips.end()));
    }
    return out;
}

} // namespace rowhammer::fault
