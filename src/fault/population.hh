/**
 * @file
 * The tested DRAM population: every module from the paper's Appendix
 * Tables 7 (DDR4) and 8 (DDR3), plus the LPDDR4 module counts of Table 1,
 * and chip-instance sampling so experiments can iterate "all chips of a
 * type-node configuration" the way the paper does.
 */

#ifndef ROWHAMMER_FAULT_POPULATION_HH
#define ROWHAMMER_FAULT_POPULATION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/chip_model.hh"
#include "fault/chipspec.hh"

namespace rowhammer::fault
{

/** One row of Table 7 / Table 8 (a group of identical modules). */
struct ModuleGroup
{
    Manufacturer manufacturer;
    TypeNode typeNode;
    std::string moduleRange; ///< e.g. "A0-15".
    int moduleCount;         ///< Modules in this group.
    std::string dateCode;    ///< "yy-ww" manufacture date, or "N/A".
    int freqMts;             ///< Data rate in MT/s.
    double trcNs;            ///< tRC of the speed bin, ns.
    int sizeGb;              ///< Module capacity, GB.
    int chipsPerModule;      ///< DRAM chips per module.
    int pinWidth;            ///< x4 / x8 / x16 organization.
    /** Minimum HCfirst across the group's chips, in hammers; nullopt for
     *  the paper's "N/A" entries (no flips observed below 150k). */
    std::optional<double> minHcFirst;
};

/** One concrete chip a characterization experiment runs on. */
struct ChipInstance
{
    ChipSpec spec;
    std::string moduleId; ///< e.g. "DDR4-A17".
    int chipIndex = 0;    ///< Position within the module.
    double hcFirst = 0.0; ///< Ground-truth minimum threshold (hammers).
    bool rowHammerable = false; ///< hcFirst < 150k.
    std::uint64_t seed = 0;

    /** Materialize the fault model for this chip. */
    ChipModel makeModel(ChipGeometry geometry = ChipGeometry{}) const;

    /** Append the bit-stable encoding of every field (run-description
     *  schema; see util/serialize.hh). */
    void serialize(util::ByteWriter &w) const;

    /** FNV-1a content hash of serialize()'s bytes. Stable under
     *  population reordering or subsetting, which is what lets a
     *  checkpointed measurement survive a changed chip sample. */
    std::uint64_t hash() const;

    /** Rebuild from serialize()'s bytes; check r.ok() afterwards. */
    static ChipInstance deserialize(util::ByteReader &r);
};

/** The full Table 7 (110 DDR4 modules). */
std::vector<ModuleGroup> table7Ddr4Modules();

/** The full Table 8 (60 DDR3 modules). */
std::vector<ModuleGroup> table8Ddr3Modules();

/** LPDDR4 module groups per Table 1 counts and Table 4 HCfirst values. */
std::vector<ModuleGroup> lpddr4Modules();

/** All 300 modules. */
std::vector<ModuleGroup> allModules();

/**
 * Sample chip instances for a module group. Chips are deterministic in
 * (group identity, seed): the group's weakest chip receives exactly the
 * group's minimum HCfirst, other chips spread upward per the config's
 * Figure 8 spread; non-RowHammerable chips (Table 2) get thresholds
 * above 150k hammers.
 *
 * @param chips_per_group Cap on instances generated per group (the full
 *     population is 1580 chips; benches usually sample).
 */
std::vector<ChipInstance> sampleChips(const ModuleGroup &group,
                                      std::uint64_t seed,
                                      int chips_per_group);

/**
 * Sample chips for every module group of a type-node configuration,
 * optionally restricted to one manufacturer.
 */
std::vector<ChipInstance>
sampleConfigChips(TypeNode tn, std::optional<Manufacturer> mfr,
                  std::uint64_t seed, int chips_per_group);

} // namespace rowhammer::fault

#endif // ROWHAMMER_FAULT_POPULATION_HH
