/**
 * @file
 * Regenerates Appendix Tables 7 and 8: the DDR4 and DDR3 module
 * populations (manufacturer, node generation, dates, speed bins,
 * organization, and per-group minimum HCfirst). A "measured" column
 * re-derives each group's minimum by fanning the Section 5.5 HCfirst
 * search across sampled chips with the PopulationRunner, validating the
 * catalogue against the fault model (RH_T78_CHIPS chips per group,
 * RH_THREADS workers; RH_CHECKPOINT persists finished chips so an
 * interrupted population run resumes; RH_DEADLINE_MS aborts a batch
 * that exceeds the deadline).
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/runner.hh"
#include "util/logging.hh"

using namespace rowhammer;

namespace
{

void
renderPopulation(const std::vector<fault::ModuleGroup> &groups,
                 const std::string &title,
                 charlib::PopulationRunner &runner, int chips_per_group)
{
    bench::banner(title);
    util::TextTable table;
    table.setHeader({"Mfr", "node", "modules", "date", "MT/s", "tRC ns",
                     "GB", "chips", "pins", "min HCfirst", "measured"});
    int modules = 0;
    int chips = 0;
    for (const auto &g : groups) {
        std::string measured = "-";
        if (chips_per_group > 0) {
            const auto sampled =
                fault::sampleChips(g, 2020, chips_per_group);
            charlib::HcFirstOptions options;
            options.sampleRows = 4;
            const auto results = runner.measureHcFirst(sampled, options);
            std::optional<std::int64_t> min;
            for (const auto &hc : results) {
                if (hc && (!min || *hc < *min))
                    min = *hc;
            }
            measured = min ? rowhammer::util::fmtKilo(
                                 static_cast<double>(*min))
                           : "N/A";
        }
        table.addRow({toString(g.manufacturer), toString(g.typeNode),
                      g.moduleRange + " (" +
                          std::to_string(g.moduleCount) + ")",
                      g.dateCode, std::to_string(g.freqMts),
                      rowhammer::util::fmt(g.trcNs, 2),
                      std::to_string(g.sizeGb),
                      std::to_string(g.chipsPerModule),
                      "x" + std::to_string(g.pinWidth),
                      g.minHcFirst
                          ? rowhammer::util::fmtKilo(*g.minHcFirst)
                          : "N/A",
                      measured});
        modules += g.moduleCount;
        chips += g.moduleCount * g.chipsPerModule;
    }
    table.render(std::cout);
    std::cout << "total modules: " << modules
              << "  total chips: " << chips << "\n";
}

} // namespace

static int
run()
{
    util::setVerbose(false);

    const int chips_per_group =
        static_cast<int>(bench::envLong("RH_T78_CHIPS", 2));
    charlib::RunnerOptions runner_options;
    runner_options.threads =
        static_cast<int>(bench::envLong("RH_THREADS", 0));
    runner_options.seed = 2020;
    runner_options.checkpointPath = bench::envString("RH_CHECKPOINT", "");
    runner_options.batchDeadlineMs = bench::envLong("RH_DEADLINE_MS", 0);
    charlib::PopulationRunner runner(runner_options);

    renderPopulation(fault::table8Ddr3Modules(),
                     "Table 8: DDR3 module population (60 modules)",
                     runner, chips_per_group);
    renderPopulation(fault::table7Ddr4Modules(),
                     "Table 7: DDR4 module population (110 modules)",
                     runner, chips_per_group);
    renderPopulation(fault::lpddr4Modules(),
                     "LPDDR4 module population (Table 1; 130 modules)",
                     runner, chips_per_group);
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
