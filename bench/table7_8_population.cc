/**
 * @file
 * Regenerates Appendix Tables 7 and 8: the DDR4 and DDR3 module
 * populations (manufacturer, node generation, dates, speed bins,
 * organization, and per-group minimum HCfirst).
 */

#include <iostream>

#include "bench_common.hh"
#include "util/logging.hh"

using namespace rowhammer;

namespace
{

void
renderPopulation(const std::vector<fault::ModuleGroup> &groups,
                 const std::string &title)
{
    bench::banner(title);
    util::TextTable table;
    table.setHeader({"Mfr", "node", "modules", "date", "MT/s", "tRC ns",
                     "GB", "chips", "pins", "min HCfirst"});
    int modules = 0;
    int chips = 0;
    for (const auto &g : groups) {
        table.addRow({toString(g.manufacturer), toString(g.typeNode),
                      g.moduleRange + " (" +
                          std::to_string(g.moduleCount) + ")",
                      g.dateCode, std::to_string(g.freqMts),
                      rowhammer::util::fmt(g.trcNs, 2),
                      std::to_string(g.sizeGb),
                      std::to_string(g.chipsPerModule),
                      "x" + std::to_string(g.pinWidth),
                      g.minHcFirst
                          ? rowhammer::util::fmtKilo(*g.minHcFirst)
                          : "N/A"});
        modules += g.moduleCount;
        chips += g.moduleCount * g.chipsPerModule;
    }
    table.render(std::cout);
    std::cout << "total modules: " << modules
              << "  total chips: " << chips << "\n";
}

} // namespace

int
main()
{
    util::setVerbose(false);
    renderPopulation(fault::table8Ddr3Modules(),
                     "Table 8: DDR3 module population (60 modules)");
    renderPopulation(fault::table7Ddr4Modules(),
                     "Table 7: DDR4 module population (110 modules)");
    renderPopulation(fault::lpddr4Modules(),
                     "LPDDR4 module population (Table 1; 130 modules)");
    return 0;
}
