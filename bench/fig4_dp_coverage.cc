/**
 * @file
 * Regenerates Figure 4: per-data-pattern coverage of the full set of
 * observable RowHammer bit flips, for a representative chip of each
 * type-node configuration and manufacturer.
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 4: RowHammer bit flip coverage per data "
                  "pattern (HC = 150k)");

    const long sample_rows = bench::envLong("RH_F4_ROWS", 64);
    const long iterations = bench::envLong("RH_F4_ITERS", 3);

    util::TextTable table;
    std::vector<std::string> header{"config"};
    for (auto dp : fault::figure4Patterns())
        header.push_back(toString(dp));
    header.push_back("union");
    table.setHeader(std::move(header));

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(tn, mfr, 2020, 1);
        util::Rng rng(17);
        bool printed = false;
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            // Sparse configurations need a larger row sample.
            const long rows_eff =
                model.spec().weakDensityAt150k < 2e-6
                    ? sample_rows * 8
                    : sample_rows;
            const auto study = charlib::runDataPatternStudy(
                model, 150000, static_cast<int>(iterations),
                static_cast<int>(rows_eff), rng);
            if (study.unionSize < 10)
                continue;
            std::vector<std::string> row{
                toString(tn) + " " + toString(mfr)};
            for (const auto &cov : study.perPattern)
                row.push_back(util::fmtPercent(cov.coverage, 0));
            row.push_back(std::to_string(study.unionSize));
            table.addRow(std::move(row));
            printed = true;
            break;
        }
        if (!printed) {
            std::vector<std::string> row{
                toString(tn) + " " + toString(mfr)};
            for (std::size_t i = 0; i < 6; ++i)
                row.push_back("-");
            row.push_back("not enough bit flips");
            table.addRow(std::move(row));
        }
    }
    table.render(std::cout);
    std::cout << "\nShape check: no single data pattern reaches 100% "
                 "coverage\n(Observation 2); the per-config worst "
                 "pattern matches Table 3.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
