/**
 * @file
 * Regenerates Table 4: the lowest measured HCfirst across the chips of
 * each DRAM type-node configuration and manufacturer.
 */

#include <iostream>
#include <optional>

#include "bench_common.hh"
#include "charlib/hcfirst.hh"
#include "util/logging.hh"

using namespace rowhammer;

namespace
{

std::optional<double>
paperValue(fault::TypeNode tn, fault::Manufacturer mfr)
{
    if (!fault::combinationExists(tn, mfr))
        return std::nullopt;
    return fault::configFor(tn, mfr).minHcFirst;
}

} // namespace

static int
run()
{
    util::setVerbose(false);
    bench::banner("Table 4: lowest HCfirst (x1000 hammers) per "
                  "configuration");

    const long chips_per_group = bench::envLong("RH_T4_CHIPS", 3);

    util::TextTable table;
    table.setHeader({"DRAM type-node", "Mfr", "measured", "paper",
                     "rel.err"});

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(
            tn, mfr, 2020, static_cast<int>(chips_per_group));
        util::Rng rng(7);
        double measured = 1e18;
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            charlib::HcFirstOptions options;
            options.sampleRows = 10;
            const auto hc = charlib::findHcFirst(model, options, rng);
            if (hc)
                measured =
                    std::min(measured, static_cast<double>(*hc));
        }
        const auto paper = paperValue(tn, mfr);
        std::vector<std::string> row{toString(tn), toString(mfr)};
        row.push_back(measured < 1e18 ? util::fmtKilo(measured)
                                      : ">150k");
        if (paper && *paper < 150000.0) {
            row.push_back(util::fmtKilo(*paper));
            row.push_back(measured < 1e18
                              ? util::fmtPercent(
                                    (measured - *paper) / *paper)
                              : "n/a");
        } else if (paper) {
            row.push_back(util::fmtKilo(*paper));
            row.push_back(measured < 1e18 ? "n/a" : "ok");
        } else {
            row.push_back("N/A");
            row.push_back("-");
        }
        table.addRow(std::move(row));
    }
    table.render(std::cout);
    std::cout << "\nShape check: within each manufacturer, newer nodes "
                 "have\nlower minimum HCfirst; LPDDR4-1y Mfr A bottoms "
                 "out near 4.8k.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
