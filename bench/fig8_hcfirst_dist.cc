/**
 * @file
 * Regenerates Figure 8: box-and-whisker distributions of per-chip
 * HCfirst for every type-node configuration and manufacturer. Each
 * chip's HCfirst is measured with the binary-search procedure of
 * Section 5.5.
 *
 * Knobs (environment, documented in EXPERIMENTS.md):
 *   RH_F8_CHIPS     chips sampled per (type-node, manufacturer) group
 *                   (default 4)
 *   RH_THREADS      worker threads (default: one per hardware thread;
 *                   results are identical for any value)
 *   RH_CHECKPOINT   checkpoint directory: each chip's finished search
 *                   persists, so a SIGKILLed run resumes instead of
 *                   recomputing (default: unset; output is
 *                   byte-identical either way)
 *   RH_DEADLINE_MS  watchdog: abort a batch exceeding this many
 *                   milliseconds (default 0 = no deadline)
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/runner.hh"
#include "util/logging.hh"
#include "util/stats.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 8: per-chip HCfirst distributions (x1000 "
                  "hammers)");

    const long chips_per_group = bench::envLong("RH_F8_CHIPS", 4);

    // One pool reused across configurations; RH_THREADS=1 reproduces
    // the serial run bit-for-bit (runner determinism contract).
    charlib::RunnerOptions runner_options;
    runner_options.threads =
        static_cast<int>(bench::envLong("RH_THREADS", 0));
    runner_options.seed = 31;
    runner_options.checkpointPath = bench::envString("RH_CHECKPOINT", "");
    runner_options.batchDeadlineMs = bench::envLong("RH_DEADLINE_MS", 0);
    charlib::PopulationRunner runner(runner_options);

    util::TextTable table;
    table.setHeader({"config", "chips", "min", "q1", "median", "q3",
                     "max", "no-flip chips"});

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(
            tn, mfr, 2020, static_cast<int>(chips_per_group));
        charlib::HcFirstOptions options;
        options.sampleRows = 8;
        const auto results = runner.measureHcFirst(chips, options);
        std::vector<double> hcs;
        int silent = 0;
        for (const auto &hc : results) {
            if (hc)
                hcs.push_back(static_cast<double>(*hc) / 1000.0);
            else
                ++silent;
        }
        std::vector<std::string> row{toString(tn) + " " +
                                     toString(mfr)};
        row.push_back(std::to_string(hcs.size()));
        if (hcs.empty()) {
            for (int i = 0; i < 5; ++i)
                row.push_back("-");
        } else {
            const auto box = util::summarize(hcs);
            row.push_back(util::fmt(box.min, 1));
            row.push_back(util::fmt(box.q1, 1));
            row.push_back(util::fmt(box.median, 1));
            row.push_back(util::fmt(box.q3, 1));
            row.push_back(util::fmt(box.max, 1));
        }
        row.push_back(std::to_string(silent));
        table.addRow(std::move(row));
    }
    table.render(std::cout);
    std::cout << "\nShape check: distributions shift downwards from old "
                 "to new\nnodes within each manufacturer (Observation "
                 "10); DDR3-old chips\nof Mfr B/C never flip below "
                 "150k.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
