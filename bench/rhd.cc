/**
 * @file
 * rhd — the campaign daemon. Owns THE util::TaskPool of the machine,
 * serves fig10 / attack-sweep / HCfirst queries over a Unix-domain
 * socket, memoizes results in an advisory-locked RunStore, and
 * checkpoints miss-path shards so a SIGKILL mid-campaign costs only
 * the in-flight shard.
 *
 * Knobs (environment):
 *   RH_SOCKET          socket path (default ./rhd.sock)
 *   RH_STORE_DIR       memo + shard-checkpoint directory
 *                      (default ./rhd-store)
 *   RH_THREADS         pool width (default: one per hardware thread)
 *   RH_MAX_PENDING     admitted requests before RetryLater shedding
 *                      (default 4)
 *   RH_IDLE_TIMEOUT_MS per-connection idle-read bound (default 30000)
 *   RH_MAX_DEADLINE_MS cap on client-requested compute deadlines
 *                      (default 0 = uncapped)
 *
 * SIGTERM/SIGINT drain gracefully: stop accepting, cancel the
 * in-flight batch (completed shards stay checkpointed), answer
 * in-flight requests ShuttingDown, flush the memo store, exit 0.
 */

#include <csignal>

#include "bench_common.hh"
#include "service/engine.hh"
#include "service/server.hh"

using namespace rowhammer;

namespace
{

service::Server *g_server = nullptr;

extern "C" void
onTerm(int)
{
    if (g_server != nullptr)
        g_server->requestShutdown(); // Async-signal-safe.
}

} // namespace

static int
run()
{
    service::EngineConfig engine_config;
    engine_config.storeDir =
        bench::envString("RH_STORE_DIR", "rhd-store");
    engine_config.threads =
        static_cast<int>(bench::envLong("RH_THREADS", 0));
    engine_config.maxDeadlineMs = static_cast<std::uint32_t>(
        bench::envLong("RH_MAX_DEADLINE_MS", 0));
    service::Engine engine(engine_config);

    service::ServerConfig server_config;
    server_config.socketPath = bench::envString("RH_SOCKET", "rhd.sock");
    server_config.maxPending =
        static_cast<int>(bench::envLong("RH_MAX_PENDING", 4));
    server_config.idleReadTimeoutMs =
        bench::envLong("RH_IDLE_TIMEOUT_MS", 30000);
    service::Server server(server_config, engine);

    g_server = &server;
    std::signal(SIGTERM, onTerm);
    std::signal(SIGINT, onTerm);
    std::signal(SIGPIPE, SIG_IGN); // A dead peer must not kill us.

    const int rc = server.run();
    g_server = nullptr;
    return rc;
}

int
main()
{
    return bench::guardedMain(run);
}
