/**
 * @file
 * Regenerates Figure 5: RowHammer bit flip rate versus hammer count
 * across type-node configurations and manufacturers. Rates are
 * aggregated across several chips per configuration, exactly as the
 * paper plots per-configuration averages.
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 5: hammer count vs RowHammer bit flip rate");

    const long sample_rows = bench::envLong("RH_F5_ROWS", 320);
    const long chips_per_config = bench::envLong("RH_F5_CHIPS", 3);
    const std::vector<std::int64_t> hcs{10000, 20000, 40000, 80000,
                                        150000};

    util::TextTable table;
    std::vector<std::string> header{"config"};
    for (auto hc : hcs)
        header.push_back(util::fmtKilo(static_cast<double>(hc)));
    table.setHeader(std::move(header));

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(
            tn, mfr, 2020, static_cast<int>(chips_per_config));
        util::Rng rng(19);

        std::vector<double> rate_sum(hcs.size(), 0.0);
        int measured_chips = 0;
        for (const auto &chip : chips) {
            fault::ChipModel model = chip.makeModel();
            const auto curve = charlib::sweepHammerCount(
                model, hcs, static_cast<int>(sample_rows), rng);
            for (std::size_t i = 0; i < curve.size(); ++i)
                rate_sum[i] += curve[i].flipRate;
            ++measured_chips;
        }

        std::vector<std::string> row{toString(tn) + " " +
                                     toString(mfr)};
        for (double sum : rate_sum) {
            const double rate = measured_chips
                                    ? sum / measured_chips
                                    : 0.0;
            std::ostringstream oss;
            if (rate > 0.0)
                oss << std::scientific << std::setprecision(1) << rate;
            else
                oss << "0";
            row.push_back(oss.str());
        }
        table.addRow(std::move(row));
    }
    table.render(std::cout);
    std::cout << "\nShape check: log(rate) grows ~linearly in log(HC) "
                 "(Observation 4);\nnewer nodes sit up and to the left "
                 "of older ones (Observation 5).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
