/**
 * @file
 * Regenerates Figure 10: DRAM bandwidth overhead (a) and normalized
 * system performance (b) of the six RowHammer mitigation mechanisms as
 * chips become more vulnerable (HCfirst from 200k down to 64).
 *
 * Scaling knobs (environment, documented in EXPERIMENTS.md at the
 * repo root):
 *   RH_F10_MIXES    workload mixes, spread over the MPKI range (default 2)
 *   RH_F10_INSTR    instructions per core per run (default 100000)
 *   RH_F10_CORES    cores (default 8 per Table 6)
 *   RH_F10_RANKS    DRAM ranks (default 1 per Table 6)
 *   RH_F10_CHANNELS memory channels / controllers (default 1 per
 *                   Table 6)
 *   RH_F10_MAPPING  address functions: a preset name (linear, bank-xor,
 *                   rank-xor, channel-xor) or a mask-file path
 *                   (default linear)
 *   RH_F10_SPREAD   1 = stride app regions over the whole memory
 *                   system (multi-rank/channel runs; default 0 =
 *                   legacy packing)
 *   RH_THREADS      sweep worker threads (default: one per hardware
 *                   thread; results are identical for any value)
 *   RH_SYS_THREADS  threads per System instance (epoch-engine channel
 *                   workers; only applied when the sweep pool is
 *                   single-threaded, e.g. RH_THREADS=1 — results are
 *                   identical for any value; default 1)
 *   RH_CHECKPOINT   checkpoint directory: completed shards persist
 *                   across crashes/SIGKILL and a rerun resumes instead
 *                   of recomputing (default: unset = no checkpointing;
 *                   output is byte-identical either way)
 *   RH_DEADLINE_MS  watchdog: abort a sweep batch that exceeds this
 *                   many milliseconds, dumping in-flight shard indices
 *                   to stderr (default 0 = no deadline)
 *
 * The config construction and table rendering live in fig10_common.hh,
 * shared with the rhc daemon client: the same knobs through rhc print
 * byte-identical figures.
 */

#include <iostream>

#include "fig10_common.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 10: mitigation mechanism scaling with "
                  "RowHammer vulnerability");

    core::ExperimentConfig config = bench::fig10ConfigFromEnv();
    const std::vector<double> hc_firsts = bench::fig10HcFirsts();
    bench::printFig10RunShape(config, std::cout);

    core::ExperimentRunner runner(config);
    bench::renderFigure10(runner.sweep(hc_firsts), std::cout);
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
