/**
 * @file
 * Regenerates Figure 10: DRAM bandwidth overhead (a) and normalized
 * system performance (b) of the six RowHammer mitigation mechanisms as
 * chips become more vulnerable (HCfirst from 200k down to 64).
 *
 * Scaling knobs (environment, documented in EXPERIMENTS.md at the
 * repo root):
 *   RH_F10_MIXES    workload mixes, spread over the MPKI range (default 2)
 *   RH_F10_INSTR    instructions per core per run (default 100000)
 *   RH_F10_CORES    cores (default 8 per Table 6)
 *   RH_F10_RANKS    DRAM ranks (default 1 per Table 6)
 *   RH_F10_CHANNELS memory channels / controllers (default 1 per
 *                   Table 6)
 *   RH_F10_MAPPING  address functions: a preset name (linear, bank-xor,
 *                   rank-xor, channel-xor) or a mask-file path
 *                   (default linear)
 *   RH_F10_SPREAD   1 = stride app regions over the whole memory
 *                   system (multi-rank/channel runs; default 0 =
 *                   legacy packing)
 *   RH_THREADS      sweep worker threads (default: one per hardware
 *                   thread; results are identical for any value)
 *   RH_CHECKPOINT   checkpoint directory: completed shards persist
 *                   across crashes/SIGKILL and a rerun resumes instead
 *                   of recomputing (default: unset = no checkpointing;
 *                   output is byte-identical either way)
 *   RH_DEADLINE_MS  watchdog: abort a sweep batch that exceeds this
 *                   many milliseconds, dumping in-flight shard indices
 *                   to stderr (default 0 = no deadline)
 */

#include <iostream>
#include <string>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "dram/address_functions.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 10: mitigation mechanism scaling with "
                  "RowHammer vulnerability");

    core::ExperimentConfig config;
    config.system.cores =
        static_cast<int>(bench::envLong("RH_F10_CORES", 8));
    config.instructionsPerCore = bench::envLong("RH_F10_INSTR", 100000);
    config.warmupInstructions = config.instructionsPerCore / 8;
    config.mixCount =
        static_cast<int>(bench::envLong("RH_F10_MIXES", 2));
    config.threads = static_cast<int>(bench::envLong("RH_THREADS", 0));
    config.checkpointPath = bench::envString("RH_CHECKPOINT", "");
    config.batchDeadlineMs = bench::envLong("RH_DEADLINE_MS", 0);

    // Scaled model (see EXPERIMENTS.md): the paper simulates 200M
    // instructions per core against a 2 GB channel, so hot rows
    // accumulate hundreds of activations per refresh window. To keep
    // bench runtime sane we shrink the run AND the memory system
    // together (DRAM rows, LLC, per-app footprints), preserving the
    // per-row activation intensity that drives counter-based
    // mechanisms (TWiCe, Ideal).
    config.system.organization.rows =
        static_cast<int>(bench::envLong("RH_F10_ROWS", 512));
    config.system.llcBytes = bench::envLong("RH_F10_LLC_MB", 1) *
        1024 * 1024;
    config.coldBytesPerApp =
        bench::envLong("RH_F10_COLD_MB", 2) * 1024 * 1024;

    // Address-translation axis: rank/channel counts, mapping
    // preset/mask file, and optional app-region spreading across the
    // full memory system.
    config.system.organization.ranks =
        static_cast<int>(bench::envLong("RH_F10_RANKS", 1));
    config.system.organization.channels =
        static_cast<int>(bench::envLong("RH_F10_CHANNELS", 1));
    const std::string mapping =
        bench::envString("RH_F10_MAPPING", "linear");
    config.system.addressFunctions = dram::AddressFunctions::resolve(
        mapping, config.system.organization);
    if (bench::envLong("RH_F10_SPREAD", 0) != 0) {
        config.appRegionStride =
            config.system.organization.systemBytes() /
            config.system.cores;
    }

    // Spread the selected mixes across the catalogue's MPKI range.
    for (int i = 0; i < config.mixCount; ++i) {
        config.mixIndices.push_back(
            config.mixCount == 1
                ? 24
                : i * 47 / (config.mixCount - 1));
    }

    // The sweep includes the paper's characterized minima (vertical
    // lines in Figure 10) and the projected future values.
    const std::vector<double> hc_firsts{200000, 69200, 32000, 17500,
                                        10000,  4800,  2000,  1024,
                                        512,    256,   128,   64};

    std::cout << "mixes=" << config.mixCount
              << " instructions/core=" << config.instructionsPerCore
              << " cores=" << config.system.cores
              << " ranks=" << config.system.organization.ranks
              << " channels=" << config.system.organization.channels
              << " mapping=" << config.system.addressFunctions.name
              << "\n\n";

    core::ExperimentRunner runner(config);
    const auto points = runner.sweep(hc_firsts);

    util::TextTable bw;
    bw.setHeader({"mechanism", "HCfirst", "bandwidth ovh %",
                  "min..max %"});
    util::TextTable perf;
    perf.setHeader({"mechanism", "HCfirst", "norm perf %",
                    "min..max %"});

    for (const auto &p : points) {
        const std::string hc_label =
            util::fmtKilo(p.hcFirst);
        if (!p.evaluated) {
            bw.addRow({toString(p.kind), hc_label, "not scalable", "-"});
            perf.addRow({toString(p.kind), hc_label, "not scalable",
                         "-"});
            continue;
        }
        if (p.normalizedPerformance.count() == 0)
            continue;
        bw.addRow({toString(p.kind), hc_label,
                   util::fmt(p.bandwidthOverheadPercent.mean(), 3),
                   util::fmt(p.bandwidthOverheadPercent.min(), 3) +
                       ".." +
                       util::fmt(p.bandwidthOverheadPercent.max(), 3)});
        perf.addRow(
            {toString(p.kind), hc_label,
             util::fmt(p.normalizedPerformance.mean() * 100.0, 2),
             util::fmt(p.normalizedPerformance.min() * 100.0, 2) +
                 ".." +
                 util::fmt(p.normalizedPerformance.max() * 100.0, 2)});
    }

    std::cout << "--- (a) DRAM bandwidth overhead of mitigation ---\n";
    bw.render(std::cout);
    std::cout << "\n--- (b) normalized system performance ---\n";
    perf.render(std::cout);

    std::cout
        << "\nShape check (paper Section 6.2.2): IncRefresh and TWiCe "
           "stop\nscaling below ~32k; ProHIT/MRLoc exist only at 2k "
           "with ~95-100%\nperformance; PARA scales everywhere but "
           "craters at low HCfirst;\nTWiCe-ideal beats PARA; the Ideal "
           "oracle stays fastest but is no\nlonger free at HCfirst <= "
           "256 (Observation: still significant\nopportunity for "
           "refresh-based mechanisms).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
