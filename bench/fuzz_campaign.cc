/**
 * @file
 * Closed-loop fuzzing campaign: the Blacksmith/TRRespass-style search
 * loop over the attack-pattern space. Each generation samples a
 * population of frequency/phase/amplitude patterns, scores them
 * against a population of simulated TRR-protected chips, and mutates
 * the winners; the campaign log ends with the headline comparison of
 * the best evolved pattern against the best hand-built N-sided one.
 *
 * Expected shape: hand-built N-sided patterns leak a few flips past a
 * TRR sampler once N exceeds the sampler size, but split their budget
 * evenly across all N aggressors; the evolved patterns keep enough
 * front-loaded decoys to stay unsampled while concentrating the budget
 * on the core pair, and end up beating the best hand-built pattern on
 * flips per tREFI ("headline: ... beats hand-built ...").
 *
 * Scaling knobs (environment, documented in EXPERIMENTS.md):
 *   RH_FZ_GENERATIONS  search generations (default 6)
 *   RH_FZ_POPULATION   patterns per generation (default 16)
 *   RH_FZ_SURVIVORS    winners carried + mutated (default 4)
 *   RH_FZ_CHIPS        chips each pattern is scored on (default 2)
 *   RH_FZ_SAMPLER      TRR sampler capacity attacked (default 4)
 *   RH_FZ_HC           chip HCfirst (default 2000)
 *   RH_FZ_BUDGET       activations per pattern (default 20 * HC * 12)
 *   RH_FZ_SEED         campaign seed (default 2024)
 *   RH_FZ_MAPPING      controller address functions (default linear)
 *   RH_FZ_ATTACKER     attacker's believed mapping (default: the true
 *                      one; see RH_AS_ATTACKER)
 *   RH_THREADS         worker threads (log identical for any value)
 *   RH_CHECKPOINT      checkpoint directory: completed sessions
 *                      persist across crashes/SIGKILL and a rerun
 *                      resumes the search instead of recomputing
 *   RH_DEADLINE_MS     watchdog per scoring batch (default 0 = off)
 */

#include <iostream>

#include "attack/fuzzer.hh"
#include "bench_common.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Closed-loop fuzzing campaign "
                  "(evolved patterns vs. a TRR sampler)");

    attack::FuzzerConfig config;
    config.generations =
        static_cast<int>(bench::envLong("RH_FZ_GENERATIONS", 6));
    config.population =
        static_cast<int>(bench::envLong("RH_FZ_POPULATION", 16));
    config.survivors =
        static_cast<int>(bench::envLong("RH_FZ_SURVIVORS", 4));
    config.chips = static_cast<int>(bench::envLong("RH_FZ_CHIPS", 2));
    config.samplerSize =
        static_cast<int>(bench::envLong("RH_FZ_SAMPLER", 4));
    config.hcFirst =
        static_cast<double>(bench::envLong("RH_FZ_HC", 2000));
    config.activationBudget = bench::envLong("RH_FZ_BUDGET", 0);
    config.seed =
        static_cast<std::uint64_t>(bench::envLong("RH_FZ_SEED", 2024));
    config.mapping = bench::envString("RH_FZ_MAPPING", "linear");
    config.attackerMapping = bench::envString("RH_FZ_ATTACKER", "");
    config.threads = static_cast<int>(bench::envLong("RH_THREADS", 0));
    config.checkpointPath = bench::envString("RH_CHECKPOINT", "");
    config.batchDeadlineMs = bench::envLong("RH_DEADLINE_MS", 0);

    const std::int64_t budget = config.activationBudget > 0
        ? config.activationBudget
        : static_cast<std::int64_t>(20.0 * config.hcFirst *
                                    config.maxOrder);
    std::cout << "chip HCfirst=" << config.hcFirst << " sampler=TRR-"
              << config.samplerSize << " budget=" << budget
              << " generations=" << config.generations
              << " population=" << config.population
              << " survivors=" << config.survivors
              << " chips=" << config.chips << "\n\n";

    const attack::Fuzzer fuzzer(config);
    const attack::CampaignResult result = fuzzer.run();
    std::cout << attack::renderCampaign(result);
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
