/**
 * @file
 * Regenerates Table 5: the percentage of cells with monotonically
 * increasing RowHammer flip probability as HC increases (25k to 150k,
 * 20 iterations per step). DDR3/DDR4 chips exceed 97%; LPDDR4 chips sit
 * near 50% because on-die ECC obscures per-cell behaviour.
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Table 5: % cells with monotonically increasing flip "
                  "probability");

    const long step = bench::envLong("RH_T5_STEP", 5000);
    const long iters = bench::envLong("RH_T5_ITERS", 20);
    const long rows = bench::envLong("RH_T5_ROWS", 24);

    util::TextTable table;
    table.setHeader({"DRAM type-node", "Mfr", "measured %", "cells",
                     "paper %"});

    struct PaperRow
    {
        fault::TypeNode tn;
        fault::Manufacturer mfr;
        const char *paper;
    };
    const PaperRow paper_rows[] = {
        {fault::TypeNode::DDR3New, fault::Manufacturer::B, "100"},
        {fault::TypeNode::DDR3New, fault::Manufacturer::C, "100"},
        {fault::TypeNode::DDR4Old, fault::Manufacturer::A, "98.4"},
        {fault::TypeNode::DDR4Old, fault::Manufacturer::B, "100"},
        {fault::TypeNode::DDR4New, fault::Manufacturer::A, "99.6"},
        {fault::TypeNode::DDR4New, fault::Manufacturer::B, "100"},
        {fault::TypeNode::LPDDR4_1x, fault::Manufacturer::A, "50.3"},
        {fault::TypeNode::LPDDR4_1x, fault::Manufacturer::B, "52.4"},
        {fault::TypeNode::LPDDR4_1y, fault::Manufacturer::A, "47.0"},
        {fault::TypeNode::LPDDR4_1y, fault::Manufacturer::C, "54.3"},
    };

    for (const auto &row : paper_rows) {
        const auto chips =
            fault::sampleConfigChips(row.tn, row.mfr, 2020, 1);
        util::Rng rng(13);
        std::string measured = "no flips";
        std::string cells = "0";
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            // Sparse configurations need a larger row sample to observe
            // enough cells.
            const long rows_eff =
                model.spec().weakDensityAt150k < 1e-5 ? rows * 6
                                                      : rows;
            const auto result = charlib::monotonicityStudy(
                model, 25000, 150000, step, static_cast<int>(iters),
                static_cast<int>(rows_eff), rng);
            if (result.cellsObserved < 10)
                continue;
            measured =
                util::fmt(result.fractionMonotonic * 100.0, 1);
            cells = std::to_string(result.cellsObserved);
            break;
        }
        table.addRow({toString(row.tn), toString(row.mfr), measured,
                      cells, row.paper});
    }
    table.render(std::cout);
    std::cout << "\nShape check: > 97% for DDR3/DDR4 configurations, "
                 "~50% for\nLPDDR4 (on-die ECC breaks per-cell "
                 "monotonicity).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
