/**
 * @file
 * The Figure 10 experiment, factored out of fig10_mitigations so the
 * standalone bench and the rhc daemon client build the SAME
 * ExperimentConfig from the SAME environment knobs and render results
 * through the SAME table code. That sharing is what makes the
 * acceptance check meaningful: an rhc query and a standalone run with
 * identical knobs must print byte-identical figures, whether the
 * daemon served the result cold or from its memo store.
 */

#ifndef ROWHAMMER_BENCH_FIG10_COMMON_HH
#define ROWHAMMER_BENCH_FIG10_COMMON_HH

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/experiment.hh"
#include "dram/address_functions.hh"

namespace rowhammer::bench
{

/** Build the Figure 10 run description from the RH_F10_* environment
 *  knobs (defaults per Table 6; see EXPERIMENTS.md). */
inline core::ExperimentConfig
fig10ConfigFromEnv()
{
    core::ExperimentConfig config;
    config.system.cores =
        static_cast<int>(envLong("RH_F10_CORES", 8));
    config.instructionsPerCore = envLong("RH_F10_INSTR", 100000);
    config.warmupInstructions = config.instructionsPerCore / 8;
    config.mixCount = static_cast<int>(envLong("RH_F10_MIXES", 2));
    config.threads = static_cast<int>(envLong("RH_THREADS", 0));
    config.systemThreads =
        static_cast<int>(envLong("RH_SYS_THREADS", 1));
    config.checkpointPath = envString("RH_CHECKPOINT", "");
    config.batchDeadlineMs = envLong("RH_DEADLINE_MS", 0);

    // Scaled model (see EXPERIMENTS.md): the paper simulates 200M
    // instructions per core against a 2 GB channel, so hot rows
    // accumulate hundreds of activations per refresh window. To keep
    // bench runtime sane we shrink the run AND the memory system
    // together (DRAM rows, LLC, per-app footprints), preserving the
    // per-row activation intensity that drives counter-based
    // mechanisms (TWiCe, Ideal).
    config.system.organization.rows =
        static_cast<int>(envLong("RH_F10_ROWS", 512));
    config.system.llcBytes = envLong("RH_F10_LLC_MB", 1) * 1024 * 1024;
    config.coldBytesPerApp =
        envLong("RH_F10_COLD_MB", 2) * 1024 * 1024;

    // Address-translation axis: rank/channel counts, mapping
    // preset/mask file, and optional app-region spreading across the
    // full memory system.
    config.system.organization.ranks =
        static_cast<int>(envLong("RH_F10_RANKS", 1));
    config.system.organization.channels =
        static_cast<int>(envLong("RH_F10_CHANNELS", 1));
    const std::string mapping = envString("RH_F10_MAPPING", "linear");
    config.system.addressFunctions = dram::AddressFunctions::resolve(
        mapping, config.system.organization);
    if (envLong("RH_F10_SPREAD", 0) != 0) {
        config.appRegionStride =
            config.system.organization.systemBytes() /
            config.system.cores;
    }

    // Spread the selected mixes across the catalogue's MPKI range.
    for (int i = 0; i < config.mixCount; ++i) {
        config.mixIndices.push_back(
            config.mixCount == 1 ? 24
                                 : i * 47 / (config.mixCount - 1));
    }
    return config;
}

/** The HCfirst sweep of Figure 10: the paper's characterized minima
 *  (vertical lines) plus the projected future values. */
inline std::vector<double>
fig10HcFirsts()
{
    return {200000, 69200, 32000, 17500, 10000, 4800,
            2000,   1024,  512,   256,   128,   64};
}

/** The run-shape line printed before the tables. */
inline void
printFig10RunShape(const core::ExperimentConfig &config,
                   std::ostream &os)
{
    os << "mixes=" << config.mixCount
       << " instructions/core=" << config.instructionsPerCore
       << " cores=" << config.system.cores
       << " ranks=" << config.system.organization.ranks
       << " channels=" << config.system.organization.channels
       << " mapping=" << config.system.addressFunctions.name
       << "\n\n";
}

/** Render both Figure 10 panels plus the shape-check footer. */
inline void
renderFigure10(const std::vector<core::SweepPoint> &points,
               std::ostream &os)
{
    util::TextTable bw;
    bw.setHeader({"mechanism", "HCfirst", "bandwidth ovh %",
                  "min..max %", "dropped wb"});
    util::TextTable perf;
    perf.setHeader({"mechanism", "HCfirst", "norm perf %",
                    "min..max %"});

    for (const auto &p : points) {
        const std::string hc_label = util::fmtKilo(p.hcFirst);
        if (!p.evaluated) {
            bw.addRow({toString(p.kind), hc_label, "not scalable", "-",
                       "-"});
            perf.addRow({toString(p.kind), hc_label, "not scalable",
                         "-"});
            continue;
        }
        if (p.normalizedPerformance.count() == 0)
            continue;
        bw.addRow({toString(p.kind), hc_label,
                   util::fmt(p.bandwidthOverheadPercent.mean(), 3),
                   util::fmt(p.bandwidthOverheadPercent.min(), 3) +
                       ".." +
                       util::fmt(p.bandwidthOverheadPercent.max(), 3),
                   util::fmt(p.droppedWritebacks.mean(), 1)});
        perf.addRow(
            {toString(p.kind), hc_label,
             util::fmt(p.normalizedPerformance.mean() * 100.0, 2),
             util::fmt(p.normalizedPerformance.min() * 100.0, 2) +
                 ".." +
                 util::fmt(p.normalizedPerformance.max() * 100.0, 2)});
    }

    os << "--- (a) DRAM bandwidth overhead of mitigation ---\n";
    bw.render(os);
    os << "\n--- (b) normalized system performance ---\n";
    perf.render(os);

    os << "\nShape check (paper Section 6.2.2): IncRefresh and TWiCe "
          "stop\nscaling below ~32k; ProHIT/MRLoc exist only at 2k "
          "with ~95-100%\nperformance; PARA scales everywhere but "
          "craters at low HCfirst;\nTWiCe-ideal beats PARA; the Ideal "
          "oracle stays fastest but is no\nlonger free at HCfirst <= "
          "256 (Observation: still significant\nopportunity for "
          "refresh-based mechanisms).\n";
}

} // namespace rowhammer::bench

#endif // ROWHAMMER_BENCH_FIG10_COMMON_HH
