/**
 * @file
 * Regenerates Table 3: the worst-case data pattern of each DRAM
 * type-node configuration per manufacturer, measured by running the
 * Figure 4 data-pattern study on representative chips.
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Table 3: worst-case data pattern per configuration "
                  "(50C)");

    const long sample_rows = bench::envLong("RH_T3_ROWS", 256);
    const long iterations = bench::envLong("RH_T3_ITERS", 2);

    util::TextTable table;
    table.setHeader({"DRAM type-node", "Mfr", "measured", "paper",
                     "flips"});

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        // Skip configurations the paper reports as having too few flips
        // for the analysis (DDR3-old everywhere; DDR3-new Mfr A).
        const fault::ChipSpec spec = fault::configFor(tn, mfr);
        const auto chips = fault::sampleConfigChips(tn, mfr, 2020, 2);
        util::Rng rng(11);

        std::string measured = "not enough flips";
        std::size_t flips = 0;
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            // Sparse configurations need a larger row sample for the
            // pattern comparison to have enough flips.
            const long rows_eff = spec.weakDensityAt150k < 2e-6
                                      ? sample_rows * 8
                                      : sample_rows;
            const auto study = charlib::runDataPatternStudy(
                model, 150000, static_cast<int>(iterations),
                static_cast<int>(rows_eff), rng);
            flips += study.unionSize;
            if (study.worstPattern && study.unionSize >= 10) {
                measured = toString(*study.worstPattern);
                break;
            }
        }
        const bool paper_has_data =
            spec.minHcFirst < 150000.0 &&
            spec.weakDensityAt150k > 1e-7;
        table.addRow({toString(tn), toString(mfr), measured,
                      paper_has_data ? toString(spec.worstPattern)
                                     : "N/A",
                      std::to_string(flips)});
    }
    table.render(std::cout);
    std::cout << "\nShape check: worst-case patterns are checkered or "
                 "rowstripe\nvariants and consistent per (mfr, config), "
                 "matching Table 3.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
