/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures: configuration iteration, representative chip
 * selection, and environment-variable scaling knobs.
 */

#ifndef ROWHAMMER_BENCH_COMMON_HH
#define ROWHAMMER_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fault/population.hh"
#include "util/table.hh"

namespace rowhammer::bench
{

/** Integer knob from the environment with a default. */
inline long
envLong(const char *name, long fallback)
{
    if (const char *value = std::getenv(name))
        return std::atol(value);
    return fallback;
}

/** String knob from the environment with a default. */
inline std::string
envString(const char *name, const std::string &fallback)
{
    if (const char *value = std::getenv(name))
        return value;
    return fallback;
}

/** All (type-node, manufacturer) combinations the paper has chips for. */
inline std::vector<std::pair<fault::TypeNode, fault::Manufacturer>>
allCombinations()
{
    std::vector<std::pair<fault::TypeNode, fault::Manufacturer>> out;
    for (int t = 0; t < fault::numTypeNodes; ++t) {
        for (auto mfr : {fault::Manufacturer::A, fault::Manufacturer::B,
                         fault::Manufacturer::C}) {
            const auto tn = static_cast<fault::TypeNode>(t);
            if (fault::combinationExists(tn, mfr))
                out.emplace_back(tn, mfr);
        }
    }
    return out;
}

/**
 * Sample up to `count` chips of a configuration (population order, so
 * the first chip of the weakest group carries the published minimum).
 */
inline std::vector<fault::ChipInstance>
configChips(fault::TypeNode tn, fault::Manufacturer mfr, int count,
            std::uint64_t seed = 2020)
{
    auto chips = fault::sampleConfigChips(tn, mfr, seed, count);
    if (static_cast<int>(chips.size()) > count) {
        // Keep the pinned-minimum chips of each group first.
        chips.resize(static_cast<std::size_t>(count) * 2);
    }
    return chips;
}

/** Print a bench header in a uniform style. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace rowhammer::bench

#endif // ROWHAMMER_BENCH_COMMON_HH
