/**
 * @file
 * Shared helpers for the bench binaries that regenerate the paper's
 * tables and figures: configuration iteration, representative chip
 * selection, and environment-variable scaling knobs.
 */

#ifndef ROWHAMMER_BENCH_COMMON_HH
#define ROWHAMMER_BENCH_COMMON_HH

#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "fault/population.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace rowhammer::bench
{

/**
 * Integer knob from the environment with a default. Strict: a
 * malformed value (RH_THREADS=four) fatal()s at startup instead of
 * silently parsing as 0 and changing the run shape.
 */
inline long
envLong(const char *name, long fallback)
{
    return util::envLong(name, fallback);
}

/** String knob from the environment with a default. */
inline std::string
envString(const char *name, const std::string &fallback)
{
    return util::envString(name, fallback);
}

/**
 * Top-level harness every bench main() delegates to: runs the bench
 * body and turns util::FatalError (bad knobs, invalid configs, a fired
 * TaskPool watchdog) into a clean stderr message and a non-zero exit
 * instead of std::terminate's abort-with-core.
 */
inline int
guardedMain(int (*run)())
{
    try {
        return run();
    } catch (const util::FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    } catch (const std::exception &err) {
        std::cerr << "unhandled exception: " << err.what() << "\n";
        return 1;
    }
}

/** All (type-node, manufacturer) combinations the paper has chips for. */
inline std::vector<std::pair<fault::TypeNode, fault::Manufacturer>>
allCombinations()
{
    std::vector<std::pair<fault::TypeNode, fault::Manufacturer>> out;
    for (int t = 0; t < fault::numTypeNodes; ++t) {
        for (auto mfr : {fault::Manufacturer::A, fault::Manufacturer::B,
                         fault::Manufacturer::C}) {
            const auto tn = static_cast<fault::TypeNode>(t);
            if (fault::combinationExists(tn, mfr))
                out.emplace_back(tn, mfr);
        }
    }
    return out;
}

/**
 * Sample up to `count` chips of a configuration (population order, so
 * the first chip of the weakest group carries the published minimum).
 */
inline std::vector<fault::ChipInstance>
configChips(fault::TypeNode tn, fault::Manufacturer mfr, int count,
            std::uint64_t seed = 2020)
{
    auto chips = fault::sampleConfigChips(tn, mfr, seed, count);
    if (static_cast<int>(chips.size()) > count) {
        // Keep the pinned-minimum chips of each group first.
        chips.resize(static_cast<std::size_t>(count) * 2);
    }
    return chips;
}

/** Print a bench header in a uniform style. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace rowhammer::bench

#endif // ROWHAMMER_BENCH_COMMON_HH
