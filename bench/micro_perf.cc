/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrates: DRAM
 * command issue, controller ticks, fault-model hammering, and ECC
 * decode throughput. These bound the wall-clock cost of the experiment
 * harness itself.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "charlib/hcfirst.hh"
#include "core/system.hh"
#include "dram/address_functions.hh"
#include "dram/device.hh"
#include "ecc/ondie.hh"
#include "fault/chip_model.hh"
#include "mitigation/factory.hh"
#include "sim/controller.hh"
#include "util/logging.hh"
#include "workload/synthetic.hh"

using namespace rowhammer;

namespace
{

void
BM_DeviceHammerPair(benchmark::State &state)
{
    dram::Device dev(dram::table6Organization(), dram::ddr4_2400());
    dram::Address a{.rank = 0, .bankGroup = 0, .bank = 0, .row = 100,
                    .column = 0};
    dram::Address b = a;
    b.row = 102;
    dram::Cycle now = 0;
    for (auto _ : state) {
        for (const auto &addr : {a, b}) {
            now = dev.earliest(dram::Command::ACT, addr, now);
            dev.issue(dram::Command::ACT, addr, now);
            now = dev.earliest(dram::Command::PRE, addr, now);
            dev.issue(dram::Command::PRE, addr, now);
        }
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DeviceHammerPair);

void
BM_ControllerTick(benchmark::State &state)
{
    sim::Controller ctrl(dram::table6Organization(), dram::ddr4_2400());
    std::uint64_t addr = 0;
    for (auto _ : state) {
        if (ctrl.readQueueSpace() > 0) {
            sim::Request r;
            r.addr = addr;
            addr += 8192 * 16; // New row each time.
            r.type = sim::Request::Type::Read;
            // Guarded by readQueueSpace() above; cannot be refused.
            (void)ctrl.enqueue(std::move(r));
        }
        ctrl.tick();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerTick);

void
BM_ControllerRowHit(benchmark::State &state)
{
    // Row-buffer-hit stream: consecutive cache lines of one row, the
    // path the FR-FCFS first pass serves without any precharge work.
    sim::Controller ctrl(dram::table6Organization(), dram::ddr4_2400());
    std::uint64_t line = 0;
    for (auto _ : state) {
        if (ctrl.readQueueSpace() > 0) {
            sim::Request r;
            r.addr = (line++ % 128) * 64; // Stay inside one row.
            r.type = sim::Request::Type::Read;
            // Guarded by readQueueSpace() above; cannot be refused.
            (void)ctrl.enqueue(std::move(r));
        }
        ctrl.tick();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControllerRowHit);

void
BM_ExperimentStep(benchmark::State &state)
{
    // One multicore experiment step (device cycle + CPU cycles) with
    // PARA attached: the unit of work behind every Figure 10 cell.
    core::SystemConfig config;
    config.cores = 4;
    config.organization.rows = 512;
    config.llcBytes = 1024 * 1024;
    const auto mixes =
        workload::mixCatalogue(config.cores, 2 * 1024 * 1024);
    core::System system(config, mixes[0].apps, 1);
    auto para = mitigation::makeMitigation(
        mitigation::Kind::PARA, 4800.0, config.timing,
        config.organization.rows, 7);
    system.setMitigation(para.get());
    for (auto _ : state)
        system.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExperimentStep);

void
BM_SystemRun(benchmark::State &state)
{
    // A whole multi-channel system run per execution engine and
    // intra-system thread count (SystemConfig::threads): arg 0 = the
    // reference lockstep engine, 1 = serial epochs, N > 1 adds
    // min(N - 1, channels) channel workers. Results are bit-identical
    // across args; only wall-clock should move.
    core::SystemConfig config;
    config.cores = 4;
    config.organization.rows = 512;
    config.organization.channels = 4;
    config.llcBytes = 1024 * 1024;
    config.addressFunctions = dram::AddressFunctions::resolve(
        "channel-xor", config.organization);
    config.lockstep = state.range(0) == 0;
    config.threads =
        std::max(1, static_cast<int>(state.range(0)));
    const auto mixes =
        workload::mixCatalogue(config.cores, 2 * 1024 * 1024);
    for (auto _ : state) {
        // Fresh System per iteration: run() is run-to-completion, and
        // constructing here also charges each engine its own worker
        // start-up cost.
        core::System system(config, mixes[0].apps, 1);
        std::vector<std::unique_ptr<mitigation::Mitigation>> paras;
        std::vector<mitigation::Mitigation *> attached;
        for (int ch = 0; ch < config.organization.channels; ++ch) {
            paras.push_back(mitigation::makeMitigation(
                mitigation::Kind::PARA, 4800.0, config.timing,
                config.organization.rows,
                7 + static_cast<std::uint64_t>(ch)));
            attached.push_back(paras.back().get());
        }
        system.setMitigations(attached);
        benchmark::DoNotOptimize(system.run(20000));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SystemRun)->Arg(0)->Arg(1)->Arg(2)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void
BM_ChipModelHammer(benchmark::State &state)
{
    fault::ChipSpec spec = fault::configFor(fault::TypeNode::DDR4New,
                                            fault::Manufacturer::A);
    fault::ChipModel chip(spec, 10000, 1);
    util::Rng rng(1);
    int row = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(chip.hammerDoubleSided(
            0, row, 100000, spec.worstPattern, rng));
        row = 64 + (row + 7) % 8192;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChipModelHammer);

void
BM_OnDieEccDecode(benchmark::State &state)
{
    ecc::OnDieEcc ecc(128);
    const util::BitVec data(128, 0x5A);
    const std::vector<std::size_t> flips{17, 63};
    for (auto _ : state)
        benchmark::DoNotOptimize(ecc.readWithFlips(data, flips));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnDieEccDecode);

void
BM_HcFirstSearch(benchmark::State &state)
{
    fault::ChipSpec spec = fault::configFor(fault::TypeNode::DDR4New,
                                            fault::Manufacturer::A);
    fault::ChipModel chip(spec, 10000, 2);
    util::Rng rng(2);
    charlib::HcFirstOptions options;
    options.sampleRows = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            charlib::findHcFirst(chip, options, rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HcFirstSearch);

} // namespace

int
main(int argc, char **argv)
{
    rowhammer::util::setVerbose(false);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
