/**
 * @file
 * Regenerates Figure 9: the hammer count needed to find the first
 * 64-bit word containing one, two, and three RowHammer bit flips, plus
 * the hammer-count multipliers between them. The multipliers quantify
 * how much a single- or double-error-correcting 64-bit ECC would
 * improve a chip's apparent HCfirst (Observations 12-13). LPDDR4 chips
 * are excluded, as in the paper, because their on-die ECC obfuscates
 * the analysis.
 *
 * Configurations fan across a util::TaskPool (RH_THREADS workers; every
 * configuration derives its own RNG stream, so the table is identical
 * for any thread count). RH_F9_ROWS scales rows probed per chip.
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/hcfirst.hh"
#include "ecc/terror.hh"
#include "util/logging.hh"
#include "util/taskpool.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 9: HC to first 64-bit word with 1/2/3 flips "
                  "and ECC multipliers");

    const long rows = bench::envLong("RH_F9_ROWS", 64);

    util::TextTable table;
    table.setHeader({"config", "HC(1)", "HC(2)", "HC(3)", "x(1->2)",
                     "x(2->3)"});

    std::vector<std::pair<fault::TypeNode, fault::Manufacturer>> combos;
    for (const auto &combo : bench::allCombinations()) {
        if (standardOf(combo.first) == dram::Standard::LPDDR4)
            continue; // On-die ECC: excluded by the paper.
        combos.push_back(combo);
    }

    util::TaskPool pool(
        static_cast<int>(bench::envLong("RH_THREADS", 0)));
    const auto rows_out = pool.map(
        combos.size(),
        [&](std::size_t c) -> std::vector<std::string> {
            const auto [tn, mfr] = combos[c];
            const auto chips = fault::sampleConfigChips(tn, mfr, 2020, 1);
            util::Rng rng(37);
            for (const auto &chip : chips) {
                if (!chip.rowHammerable)
                    continue;
                fault::ChipModel model = chip.makeModel();
                std::array<std::optional<std::int64_t>, 3> hc;
                for (int k = 1; k <= 3; ++k) {
                    charlib::HcFirstOptions options;
                    options.sampleRows = static_cast<int>(rows);
                    options.flipsPerWord = k;
                    // The paper's Figure 9 y-axis extends to 200k
                    // hammers (still within the 32 ms refresh-window
                    // bound).
                    options.hcMax = 200000;
                    hc[static_cast<std::size_t>(k - 1)] =
                        charlib::findHcFirst(model, options, rng);
                }
                if (!hc[0])
                    continue;
                std::vector<std::string> row{toString(tn) + " " +
                                             toString(mfr)};
                for (const auto &h : hc) {
                    row.push_back(h ? util::fmtKilo(
                                          static_cast<double>(*h))
                                    : ">200k");
                }
                row.push_back(
                    hc[1] ? util::fmt(static_cast<double>(*hc[1]) /
                                          static_cast<double>(*hc[0]),
                                      2)
                          : "-");
                row.push_back(hc[1] && hc[2]
                                  ? util::fmt(
                                        static_cast<double>(*hc[2]) /
                                            static_cast<double>(*hc[1]),
                                        2)
                                  : "-");
                return row;
            }
            return {toString(tn) + " " + toString(mfr),
                    "not enough bit flips", "-", "-", "-", "-"};
        });

    for (auto row : rows_out)
        table.addRow(std::move(row));
    table.render(std::cout);
    std::cout << "\nShape check: SEC ECC (x 1->2) buys up to ~2.8x for "
                 "DDR4 chips\nand ~1.65x for DDR3-new; the 2->3 "
                 "multiplier diminishes for DDR4\n(Observations "
                 "12-13).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
