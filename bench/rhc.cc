/**
 * @file
 * rhc — client for the rhd campaign daemon. Builds the SAME Figure 10
 * run description from the SAME RH_F10_* environment knobs as the
 * standalone fig10_mitigations bench (via fig10_common.hh), sends it
 * to the daemon, and renders the reply through the same table code —
 * so `rhc fig10` output matches the standalone bench byte-for-byte
 * from the run-shape line onward, cold or memo-served.
 *
 * Usage: rhc [fig10|ping]           (default fig10)
 *
 * Knobs (environment):
 *   RH_SOCKET           daemon socket path (default ./rhd.sock)
 *   RH_DEADLINE_MS      compute deadline sent with the request
 *                       (default 0 = daemon's cap, if any)
 *   RH_RHC_ATTEMPTS     retry budget incl. the first try (default 5)
 *   RH_RHC_BACKOFF_MS   base backoff, doubling per retry (default 100)
 *   RH_RHC_TIMEOUT_MS   per-read reply timeout (default 0 = wait;
 *                       campaign computes can take minutes)
 *   RH_F10_*            run description, as in fig10_mitigations
 *
 * Exit codes: 0 ok, 1 terminal daemon error, 2 gave up after retries
 * (daemon down or persistently shedding).
 */

#include <iostream>
#include <string>

#include "fig10_common.hh"
#include "service/client.hh"
#include "service/requests.hh"
#include "util/logging.hh"

using namespace rowhammer;

static std::string g_command = "fig10";

static int
runCommand(const std::string &command)
{
    util::setVerbose(false);

    service::ClientOptions options;
    options.socketPath = bench::envString("RH_SOCKET", "rhd.sock");
    options.maxAttempts =
        static_cast<int>(bench::envLong("RH_RHC_ATTEMPTS", 5));
    options.baseBackoffMs = bench::envLong("RH_RHC_BACKOFF_MS", 100);
    options.idleReadTimeoutMs = bench::envLong("RH_RHC_TIMEOUT_MS", 0);

    if (command == "ping") {
        const auto result =
            service::call(options, service::MsgType::Ping, "");
        if (!result.ok) {
            std::cerr << "rhc: ping failed after " << result.attempts
                      << " attempt(s): " << result.error << "\n";
            return result.haveReply ? 1 : 2;
        }
        std::cout << "pong (attempt " << result.attempts << ")\n";
        return 0;
    }
    if (command != "fig10") {
        std::cerr << "rhc: unknown command '" << command
                  << "' (expected fig10 or ping)\n";
        return 1;
    }

    service::Fig10Request request;
    request.config = bench::fig10ConfigFromEnv();
    request.hcFirsts = bench::fig10HcFirsts();
    const auto deadline_ms = static_cast<std::uint32_t>(
        bench::envLong("RH_DEADLINE_MS", 0));

    const auto result = service::call(
        options, service::MsgType::Fig10,
        service::encodeRequestPayload(deadline_ms, request.encode()));
    if (!result.ok) {
        std::cerr << "rhc: fig10 query failed after " << result.attempts
                  << " attempt(s): " << result.error << "\n";
        return result.haveReply ? 1 : 2;
    }

    std::vector<core::SweepPoint> points;
    if (!service::decodeFig10Points(result.reply.result, points)) {
        std::cerr << "rhc: daemon reply did not decode as Figure 10 "
                     "points\n";
        return 1;
    }

    // Provenance to stderr so stdout stays byte-comparable with the
    // standalone bench.
    std::cerr << "rhc: " << (result.reply.cached ? "memo-served"
                                                 : "computed")
              << " in " << result.attempts << " attempt(s)\n";

    bench::printFig10RunShape(request.config, std::cout);
    bench::renderFigure10(points, std::cout);
    return 0;
}

static int
run()
{
    return runCommand(g_command);
}

int
main(int argc, char **argv)
{
    if (argc > 1)
        g_command = argv[1];
    return bench::guardedMain(run);
}
