/**
 * @file
 * Regenerates Table 2: the fraction of DDR3 chips in which any
 * RowHammer bit flip can be induced at HC < 150k, per manufacturer and
 * node generation. Each sampled chip is actually *measured* with the
 * HCfirst search (not just read off the population metadata).
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/hcfirst.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Table 2: fraction of DDR3 chips vulnerable to "
                  "RowHammer (HC < 150k)");

    // Default: measure every chip of the DDR3 population (sampleChips
    // caps at each group's real size, preserving group proportions).
    const long chips_per_group =
        bench::envLong("RH_T2_CHIPS_PER_GROUP", 128);

    util::TextTable table;
    table.setHeader({"DRAM type-node", "Mfr. A", "Mfr. B", "Mfr. C",
                     "paper A", "paper B", "paper C"});

    const char *paper[2][3] = {{"24/88", "0/88", "0/28"},
                               {"8/72", "44/52", "96/104"}};

    int row_idx = 0;
    for (auto tn : {fault::TypeNode::DDR3Old, fault::TypeNode::DDR3New}) {
        std::vector<std::string> row{toString(tn)};
        for (auto mfr : {fault::Manufacturer::A, fault::Manufacturer::B,
                         fault::Manufacturer::C}) {
            // Sample evenly across all module groups of the config, so
            // group-concentrated vulnerability (e.g. Mfr A's A7-9
            // modules) is represented as in the paper's population.
            auto chips = fault::sampleConfigChips(
                tn, mfr, 2020, static_cast<int>(chips_per_group));

            int hammerable = 0;
            util::Rng rng(5);
            for (const auto &chip : chips) {
                fault::ChipModel model = chip.makeModel();
                charlib::HcFirstOptions options;
                options.sampleRows = 8;
                if (charlib::findHcFirst(model, options, rng))
                    ++hammerable;
            }
            row.push_back(std::to_string(hammerable) + "/" +
                          std::to_string(chips.size()));
        }
        row.push_back(paper[row_idx][0]);
        row.push_back(paper[row_idx][1]);
        row.push_back(paper[row_idx][2]);
        table.addRow(std::move(row));
        ++row_idx;
    }
    table.render(std::cout);
    std::cout << "\nShape check: Mfr B and C go from zero RowHammerable\n"
                 "chips (old) to a large majority (new); Mfr A chips "
                 "show\nfew flips in both generations.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
