/**
 * @file
 * Regenerates Figure 6: the spatial distribution of RowHammer bit flips
 * by row offset from the victim, with each chip normalized to a flip
 * rate of 1e-6 (Section 5.4).
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 6: distribution of flips by distance from the "
                  "victim row (rate 1e-6)");

    const long rate_rows = bench::envLong("RH_F6_RATE_ROWS", 192);
    const long dist_rows = bench::envLong("RH_F6_DIST_ROWS", 2048);

    util::TextTable table;
    std::vector<std::string> header{"config"};
    for (int off = -6; off <= 6; ++off)
        header.push_back(std::to_string(off));
    header.push_back("flips");
    table.setHeader(std::move(header));

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(tn, mfr, 2020, 1);
        util::Rng rng(23);
        bool printed = false;
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            const auto hc = charlib::hammerCountForRate(
                model, 1e-6, static_cast<int>(rate_rows), 150000, rng);
            if (!hc)
                continue;
            const auto dist = charlib::spatialDistribution(
                model, *hc, static_cast<int>(dist_rows), rng);
            if (dist.totalFlips < 20)
                continue;
            std::vector<std::string> row{toString(tn) + " " +
                                         toString(mfr)};
            for (int off = -6; off <= 6; ++off)
                row.push_back(util::fmt(dist.at(off), 3));
            row.push_back(std::to_string(dist.totalFlips));
            table.addRow(std::move(row));
            printed = true;
            break;
        }
        if (!printed) {
            std::vector<std::string> row{toString(tn) + " " +
                                         toString(mfr)};
            for (int off = -6; off <= 6; ++off)
                row.push_back("-");
            row.push_back("not enough bit flips");
            table.addRow(std::move(row));
        }
    }
    table.render(std::cout);
    std::cout
        << "\nShape check: victim row (offset 0) dominates; aggressor "
           "rows\n(+/-1) are zero; only even offsets flip; LPDDR4-1y "
           "reaches +/-4\nand beyond while DDR3/DDR4 stop at +/-2 "
           "(Observations 6-7).\nMfr B LPDDR4-1x shows the "
           "paired-wordline remap (flips at the\npair-mate offset "
           "+/-1 of the victim's shared wordline).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
