/**
 * @file
 * Regenerates Figure 7: the distribution of RowHammer bit flips per
 * 64-bit word across configurations. DDR3/DDR4 decay exponentially;
 * LPDDR4 chips show much heavier 2- and 3-flip mass because of on-die
 * ECC (Observations 8-9).
 */

#include <iostream>

#include "bench_common.hh"
#include "charlib/analyses.hh"
#include "util/logging.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Figure 7: flips per 64-bit word over words with any "
                  "flip");

    const long rows = bench::envLong("RH_F7_ROWS", 512);

    util::TextTable table;
    table.setHeader({"config", "1", "2", "3", "4", "5+", "words"});

    for (const auto &[tn, mfr] : bench::allCombinations()) {
        const auto chips = fault::sampleConfigChips(tn, mfr, 2020, 1);
        util::Rng rng(29);
        bool printed = false;
        for (const auto &chip : chips) {
            if (!chip.rowHammerable)
                continue;
            fault::ChipModel model = chip.makeModel();
            const auto density = charlib::wordDensity(
                model, 150000, static_cast<int>(rows), rng);
            if (density.wordsWithFlips < 20)
                continue;
            std::vector<std::string> row{toString(tn) + " " +
                                         toString(mfr)};
            for (double f : density.fraction)
                row.push_back(util::fmt(f, 3));
            row.push_back(std::to_string(density.wordsWithFlips));
            table.addRow(std::move(row));
            printed = true;
            break;
        }
        if (!printed) {
            table.addRow({toString(tn) + " " + toString(mfr), "-", "-",
                          "-", "-", "-", "not enough bit flips"});
        }
    }
    table.render(std::cout);
    std::cout << "\nShape check: DDR3/DDR4 words are overwhelmingly "
                 "single-flip\n(exponential decay); LPDDR4 has a much "
                 "larger 2-3 flip share\n(on-die ECC hides singles and "
                 "miscorrects doubles, Observation 9).\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
