/**
 * @file
 * Attack-pattern x mitigation grid: the modern-attack complement to
 * Figure 10. Generated single-sided, double-sided, N-sided, and
 * frequency-fuzzed patterns run against the in-DRAM TRR sampler model
 * (several sampler sizes) and the paper's Section 6 mechanisms on a
 * TRR-era chip, reporting observed bit flips per cell.
 *
 * Expected shape: double-sided is fully mitigated by any TRR sampler
 * with >= 2 slots, an N-sided pattern with N above the sampler size
 * bypasses it (nonzero flips), and the Ideal oracle stops everything.
 *
 * Scaling knobs (environment, documented in EXPERIMENTS.md):
 *   RH_AS_HC       chip HCfirst (default 2000)
 *   RH_AS_FUZZ     fuzzed patterns generated (default 3)
 *   RH_AS_BUDGET   activations per pattern (default 8 * HC * 20)
 *   RH_AS_SEED     chip/pattern seed (default 2020)
 *   RH_AS_BANKS    chip banks (default 1; use 16 with mappings)
 *   RH_AS_MAPPING  controller address functions: preset name or mask
 *                  file (default linear)
 *   RH_AS_ATTACKER attacker's believed mapping (default: the true one,
 *                  i.e. a zenhammer-style attacker; set to linear with
 *                  a non-linear RH_AS_MAPPING for a naive attacker)
 *   RH_AS_RANKS    ranks the mapping splits the banks across (default 1)
 *   RH_AS_CHANNELS channels the mapping splits the banks across
 *                  (default 1; pair with RH_AS_MAPPING=channel-xor)
 *   RH_THREADS     worker threads (results identical for any value)
 *   RH_CHECKPOINT  checkpoint directory: completed cells persist
 *                  across crashes/SIGKILL and a rerun resumes instead
 *                  of recomputing (default: unset; output is
 *                  byte-identical either way)
 *   RH_DEADLINE_MS watchdog: abort the cell batch if it exceeds this
 *                  many milliseconds (default 0 = no deadline)
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace rowhammer;

static int
run()
{
    util::setVerbose(false);
    bench::banner("Attack patterns vs. mitigation mechanisms "
                  "(N-sided / fuzzed hammering against TRR samplers)");

    attack::SweepConfig config;
    config.hcFirst =
        static_cast<double>(bench::envLong("RH_AS_HC", 2000));
    config.fuzzCount = static_cast<int>(bench::envLong("RH_AS_FUZZ", 3));
    config.activationBudget = bench::envLong("RH_AS_BUDGET", 0);
    config.seed =
        static_cast<std::uint64_t>(bench::envLong("RH_AS_SEED", 2020));
    config.threads = static_cast<int>(bench::envLong("RH_THREADS", 0));
    config.checkpointPath = bench::envString("RH_CHECKPOINT", "");
    config.batchDeadlineMs = bench::envLong("RH_DEADLINE_MS", 0);
    config.geometry.banks =
        static_cast<int>(bench::envLong("RH_AS_BANKS", 1));
    config.mapping = bench::envString("RH_AS_MAPPING", "linear");
    config.attackerMapping = bench::envString("RH_AS_ATTACKER", "");
    config.mappingRanks =
        static_cast<int>(bench::envLong("RH_AS_RANKS", 1));
    config.mappingChannels =
        static_cast<int>(bench::envLong("RH_AS_CHANNELS", 1));

    const std::int64_t budget = config.activationBudget > 0
        ? config.activationBudget
        : static_cast<std::int64_t>(
              8.0 * config.hcFirst *
              *std::max_element(config.nSides.begin(),
                                config.nSides.end()));
    std::cout << "chip HCfirst=" << config.hcFirst
              << " sampler sizes={2,4,8}"
              << " budget=" << budget
              << " acts/tREFI=" << config.actsPerRefInterval
              << " mapping=" << config.mapping
              << " attacker="
              << (config.attackerMapping.empty()
                      ? "mapping-aware"
                      : config.attackerMapping)
              << "\n\n";

    const auto cells = attack::runSweep(config);

    // Pivot: one row per pattern, one column per mechanism.
    std::vector<std::string> mech_order;
    std::vector<std::string> pattern_order;
    std::map<std::pair<std::string, std::string>, std::int64_t> flips;
    for (const auto &cell : cells) {
        if (std::find(mech_order.begin(), mech_order.end(),
                      cell.mechanism) == mech_order.end())
            mech_order.push_back(cell.mechanism);
        if (std::find(pattern_order.begin(), pattern_order.end(),
                      cell.pattern) == pattern_order.end())
            pattern_order.push_back(cell.pattern);
        flips[{cell.pattern, cell.mechanism}] = cell.flips;
    }

    util::TextTable table;
    std::vector<std::string> header{"pattern \\ flips"};
    header.insert(header.end(), mech_order.begin(), mech_order.end());
    table.setHeader(header);
    for (const auto &pattern : pattern_order) {
        std::vector<std::string> row{pattern};
        for (const auto &mech : mech_order)
            row.push_back(std::to_string(flips[{pattern, mech}]));
        table.addRow(row);
    }
    table.render(std::cout);

    std::cout
        << "\nShape check: TRR-S stops single/double-sided and every "
           "N-sided\npattern with N <= S, but N > S saturates the "
           "sampler (the decoys\nclaim every slot) and the true pair "
           "hammers the profiled victim\nfreely - nonzero flips. PARA "
           "and the Ideal oracle are pattern-\nagnostic and stop every "
           "generated pattern; ProHIT/MRLoc (tuned\nfor double-sided "
           "locality at HCfirst=2000) degrade under high-\norder "
           "patterns.\n";
    return 0;
}

int
main()
{
    return bench::guardedMain(run);
}
