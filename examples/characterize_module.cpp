/**
 * @file
 * Command-level characterization of one DRAM module, exactly as the
 * paper's FPGA methodology does it (Section 4): reverse-engineer the
 * logical-to-physical row remap, then run Algorithm 1 across hammer
 * counts and data patterns through the SoftMC-substitute tester.
 *
 * Build & run:  ./build/examples/characterize_module
 */

#include <iostream>

#include "charlib/runner.hh"
#include "fault/population.hh"
#include "softmc/chip_tester.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace rowhammer;

int
main()
{
    util::setVerbose(false);

    // Use a dense variant of a Mfr B LPDDR4-1x chip so the remap
    // reverse-engineering has flips to find quickly in a demo.
    fault::ChipSpec spec = fault::configFor(fault::TypeNode::LPDDR4_1x,
                                            fault::Manufacturer::B);
    spec.weakDensityAt150k = 3e-3;
    fault::ChipGeometry geometry;
    geometry.banks = 2;
    geometry.rows = 2048;
    geometry.rowDataBits = 16384;
    fault::ChipModel chip(spec, 16800, 99, geometry);
    softmc::ChipTester tester(chip); // 50C, like the paper.

    util::Rng rng(3);

    // Step 1: find the aggressor step. Mfr B LPDDR4-1x chips pair
    // consecutive logical rows onto one wordline, so the step is 2.
    const int step = tester.reverseEngineerAggressorStep(0, 64, rng);
    std::cout << "reverse-engineered aggressor step: " << step
              << (step == 2 ? "  (paired-wordline remap!)" : "")
              << "\n\n";

    // Step 2: Algorithm 1 on the chip's weakest row (HCfirst = 16.8k)
    // across hammer counts.
    const int bank = chip.weakestBank();
    const int victim = chip.weakestRow();
    util::TextTable table;
    table.setHeader({"HC", "flips", "core loop ms", "activations"});
    for (std::int64_t hc : {10000, 30000, 60000, 100000, 150000}) {
        const auto result = tester.runHammerTest(
            bank, victim, hc, spec.worstPattern, rng);
        table.addRow({std::to_string(hc),
                      std::to_string(result.flips.size()),
                      util::fmt(result.coreLoopMs, 2),
                      std::to_string(result.activations)});
    }
    table.render(std::cout);
    std::cout << "(core loop always < 32 ms: flips are RowHammer, not "
                 "retention)\n\n";

    // Step 3: data-pattern dependence at HC = 150k.
    util::TextTable dp_table;
    dp_table.setHeader({"pattern", "flips"});
    for (auto dp : fault::figure4Patterns()) {
        const auto result =
            tester.runHammerTest(bank, victim, 150000, dp, rng);
        dp_table.addRow({toString(dp),
                         std::to_string(result.flips.size())});
    }
    dp_table.render(std::cout);
    std::cout << "(worst-case pattern for this config: "
              << toString(spec.worstPattern) << ")\n\n";

    // Step 4: scale out — fan the same HCfirst search across every chip
    // of a sampled module with the PopulationRunner. Per-chip RNG
    // streams make the results bit-identical for any thread count.
    const auto chips = fault::sampleConfigChips(
        fault::TypeNode::LPDDR4_1x, fault::Manufacturer::B, 2020, 4);
    charlib::RunnerOptions runner_options;
    runner_options.seed = 7;
    charlib::PopulationRunner runner(runner_options);
    charlib::HcFirstOptions options;
    options.sampleRows = 8;
    const auto measured = runner.measureHcFirst(chips, options, geometry);

    util::TextTable pop_table;
    pop_table.setHeader({"chip", "true HCfirst", "measured HCfirst"});
    for (std::size_t i = 0; i < chips.size(); ++i) {
        pop_table.addRow(
            {chips[i].moduleId + "/" +
                 std::to_string(chips[i].chipIndex),
             chips[i].rowHammerable ? util::fmt(chips[i].hcFirst, 0)
                                    : "> 150k",
             measured[i] ? std::to_string(*measured[i]) : "no flips"});
    }
    pop_table.render(std::cout);
    std::cout << "(population fan-out across " << runner.threadCount()
              << " threads; deterministic for any thread count)\n";
    return 0;
}
