/**
 * @file
 * End-to-end RowHammer attack simulation: an attacker issues a
 * double-sided hammer through the full cycle-accurate memory
 * controller, targeting the chip's weakest (profiled) row. Accesses are
 * serialized (each read waits for the previous one, as a CLFLUSH-based
 * attack does) so the FR-FCFS scheduler cannot batch row hits and every
 * access costs an activation. Run once unprotected and once with PARA
 * attached, and compare the victim's accumulated exposure and observed
 * bit flips.
 *
 * Build & run:  ./build/examples/attack_sim
 */

#include <iostream>

#include "fault/chip_model.hh"
#include "mitigation/para.hh"
#include "sim/controller.hh"
#include "util/logging.hh"

using namespace rowhammer;

namespace
{

/**
 * Drive a serialized double-sided hammer through the controller and
 * mirror the resulting ACT stream into the fault model. Returns the
 * victim row's worst un-refreshed exposure, in hammers.
 */
double
runAttack(mitigation::Mitigation *mechanism, fault::ChipModel &chip,
          int bank, int victim_row, std::int64_t hammers)
{
    sim::Controller ctrl(dram::table6Organization(), dram::ddr4_2400());
    ctrl.setMitigation(mechanism);
    const sim::AddressMapper &mapper = ctrl.mapper();

    chip.writePattern(chip.spec().worstPattern, victim_row & 1);
    chip.refreshRow(bank, victim_row);

    dram::Address a1{.rank = 0, .bankGroup = 0, .bank = 0,
                     .row = victim_row - 1, .column = 0};
    dram::Address a2 = a1;
    a2.row = victim_row + 1;

    // Track the victim's exposure *between mitigation refreshes*: each
    // victim refresh restores the row, so only the longest refresh-free
    // stretch matters for whether the attack succeeds.
    std::int64_t acts_since_refresh = 0;
    std::int64_t worst_stretch = 0;
    std::int64_t prev_refreshes = 0;

    bool toggle = false;
    for (std::int64_t i = 0; i < 2 * hammers; ++i) {
        // Serialized access: wait for the read to complete before
        // issuing the next one, so every access misses the row buffer.
        bool done = false;
        sim::Request r;
        r.addr = mapper.encode(toggle ? a1 : a2);
        toggle = !toggle;
        r.type = sim::Request::Type::Read;
        r.onComplete = [&] { done = true; };
        while (!ctrl.enqueue(r))
            ctrl.tick();
        while (!done)
            ctrl.tick();

        ++acts_since_refresh;
        const std::int64_t refreshes =
            ctrl.stats().mitigationRefreshes;
        if (refreshes != prev_refreshes) {
            worst_stretch =
                std::max(worst_stretch, acts_since_refresh);
            acts_since_refresh = 0;
            prev_refreshes = refreshes;
        }
    }
    worst_stretch = std::max(worst_stretch, acts_since_refresh);

    // Mirror the worst refresh-free stretch into the fault model (half
    // the activations land on each aggressor).
    chip.addActivations(bank, victim_row - 1, worst_stretch / 2);
    chip.addActivations(bank, victim_row + 1, worst_stretch / 2);

    const auto &stats = ctrl.stats();
    std::cout << "  demand ACTs: " << stats.demandActs
              << ", mitigation refreshes: "
              << stats.mitigationRefreshes
              << ", worst refresh-free exposure: "
              << chip.exposure(bank, victim_row) << " hammers\n";
    return chip.exposure(bank, victim_row);
}

} // namespace

int
main()
{
    util::setVerbose(false);

    // A DDR4-new chip with HCfirst = 10k; the attacker has profiled the
    // chip (Section 6.3.1 discusses such profiling) and targets the
    // weakest row.
    fault::ChipSpec spec = fault::configFor(fault::TypeNode::DDR4New,
                                            fault::Manufacturer::A);
    fault::ChipGeometry geometry;
    geometry.banks = 2;
    geometry.rows = 1024;
    geometry.rowDataBits = 16384;

    const std::int64_t hammers = 15000;

    std::cout << "attack: serialized double-sided hammer, " << hammers
              << " hammer pairs against a chip with HCfirst 10k\n";

    std::cout << "\nwithout mitigation:\n";
    fault::ChipModel bare(spec, 10000, 7, geometry);
    runAttack(nullptr, bare, bare.weakestBank(), bare.weakestRow(),
              hammers);
    util::Rng rng(4);
    const auto flips =
        bare.readRow(bare.weakestBank(), bare.weakestRow(), rng);
    std::cout << "  observed bit flips in victim: " << flips.size()
              << (flips.empty() ? "" : "  (attack succeeded)") << "\n";

    std::cout << "\nwith PARA (p solved for HCfirst 10k):\n";
    fault::ChipModel guarded(spec, 10000, 7, geometry);
    mitigation::Para para(10000.0, dram::ddr4_2400(), 42);
    runAttack(&para, guarded, guarded.weakestBank(),
              guarded.weakestRow(), hammers);
    const auto guarded_flips = guarded.readRow(
        guarded.weakestBank(), guarded.weakestRow(), rng);
    std::cout << "  observed bit flips in victim: "
              << guarded_flips.size() << "  (victim refreshed before "
              << "its threshold; attack defeated)\n";
    return 0;
}
