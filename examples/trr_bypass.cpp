/**
 * @file
 * TRR bypass through the cycle-accurate path: an attack pattern is
 * replayed by attack::TraceAdapter (a cpu::TraceSource), driven through
 * a trace-driven core into the FR-FCFS memory controller with an
 * in-DRAM TRR sampler attached, and the controller's ACT command stream
 * is mirrored into the circuit-level fault model to observe bit flips.
 *
 * The paper's worst-case double-sided hammer is caught cold: the
 * sampler latches both aggressors every refresh interval and the RFM
 * slots keep the victim refreshed. The TRRespass-style 8-sided pattern
 * overwhelms the 2-slot sampler with decoys, and the true pair slips
 * through often enough to flip the profiled victim of a
 * projected-future chip (HCfirst = 128, the tail of the paper's
 * Figure 10 sweep).
 *
 * Build & run:  ./build/examples/trr_bypass
 */

#include <algorithm>
#include <iostream>

#include "attack/builder.hh"
#include "attack/trace_adapter.hh"
#include "cpu/core.hh"
#include "fault/chip_model.hh"
#include "mitigation/trr.hh"
#include "sim/controller.hh"
#include "util/logging.hh"

using namespace rowhammer;

namespace
{

constexpr double kHcFirst = 128; // Projected-future chip (Section 6.2).
constexpr std::int64_t kTargetActs = 60000;

/**
 * Drive `pattern` through core + controller until the aggressor rows
 * have absorbed kTargetActs activations, mirroring ACTs into the fault
 * model (aggressor ACT = hammer; any other ACT, e.g. a TRR victim
 * refresh, = restorative row cycle). Returns the victim's flip count.
 */
std::size_t
runAttack(fault::ChipModel &chip, const attack::AccessPattern &pattern,
          mitigation::Mitigation *mechanism)
{
    dram::Organization org;
    org.ranks = 1;
    org.bankGroups = 1;
    org.banksPerGroup = chip.geometry().banks;
    org.rows = chip.geometry().rows;
    org.columns = static_cast<int>(chip.geometry().rowDataBits / 8 / 64);
    org.bytesPerColumn = 64;
    org.check();

    sim::Controller ctrl(org, dram::ddr4_2400());
    ctrl.setMitigation(mechanism);

    chip.writePattern(chip.spec().worstPattern, pattern.victimRow & 1);
    chip.refreshRow(pattern.bank, pattern.victimRow);

    // 200 non-memory bubbles between accesses model a flush-serialized
    // attacker (one access per ~tRC): without them the FR-FCFS
    // scheduler batches row hits and the hammer intensity collapses.
    attack::TraceAdapter trace(pattern, sim::AddressMapper(org), 200);

    std::int64_t aggressor_acts = 0;
    std::vector<fault::FlipObservation> latched;
    util::Rng rng(99);
    ctrl.device().setObserver([&](dram::Command cmd,
                                  const dram::Address &addr,
                                  dram::Cycle) {
        if (cmd == dram::Command::REF) {
            // Blacksmith-style REF synchronization: re-phase the
            // pattern so its decoy slots always fire first within a
            // refresh interval (what keeps an in-order sampler blind).
            trace.resync();
            return;
        }
        if (cmd != dram::Command::ACT)
            return;
        if (pattern.hasAggressor(addr.row)) {
            chip.addActivations(pattern.bank, addr.row, 1);
            ++aggressor_acts;
        } else {
            // Victim refreshes (TRR service) and any other row cycle
            // restore the row's charge - but a flip that already
            // happened persists: harvest before restoring.
            chip.readRowInto(pattern.bank, addr.row, rng, latched);
            chip.refreshRow(pattern.bank, addr.row);
        }
    });
    cpu::Core core(
        trace,
        [&](std::uint64_t addr, bool write,
            std::function<void()> done) {
            sim::Request request;
            request.addr = addr;
            request.type = write ? sim::Request::Type::Write
                                 : sim::Request::Type::Read;
            request.onComplete = std::move(done);
            return ctrl.enqueue(request);
        });

    const dram::Cycle cycle_cap = 20'000'000;
    while (aggressor_acts < kTargetActs && ctrl.now() < cycle_cap) {
        core.tick();
        ctrl.tick();
    }

    std::cout << "  pattern " << pattern.label << ": "
              << aggressor_acts << " aggressor ACTs, "
              << ctrl.stats().autoRefreshes << " REFs, "
              << ctrl.stats().mitigationRefreshes
              << " TRR victim refreshes\n";

    chip.readRowInto(pattern.bank, pattern.victimRow, rng, latched);
    std::sort(latched.begin(), latched.end());
    latched.erase(std::unique(latched.begin(), latched.end()),
                  latched.end());
    std::size_t victim_flips = 0;
    for (const auto &flip : latched)
        victim_flips += flip.row == pattern.victimRow ? 1 : 0;
    std::cout << "  observed bit flips in the profiled victim: "
              << victim_flips << "\n";
    return victim_flips;
}

} // namespace

int
main()
{
    util::setVerbose(false);

    fault::ChipSpec spec = fault::configFor(fault::TypeNode::DDR4New,
                                            fault::Manufacturer::A);
    fault::ChipGeometry geometry;
    geometry.banks = 1;
    geometry.rows = 1024;
    geometry.rowDataBits = 16384;

    attack::BuilderConfig builder_config;
    builder_config.rows = geometry.rows;
    builder_config.activationBudget = kTargetActs;

    std::cout << "in-DRAM TRR sampler (2 slots, in-order) vs. a "
              << "projected-future chip (HCfirst " << kHcFirst << ")\n";

    mitigation::TrrSampler::Params params;
    params.samplerSize = 2;
    params.refreshSlotsPerRef = 2;

    {
        std::cout << "\ndouble-sided hammer (the paper's worst case):\n";
        fault::ChipModel chip(spec, kHcFirst, 7, geometry);
        attack::PatternBuilder builder(builder_config, 1);
        mitigation::TrrSampler trr(42, params);
        runAttack(chip,
                  builder.doubleSided(chip.weakestBank(),
                                      chip.weakestRow()),
                  &trr);
        std::cout << "  -> both aggressors fit the sampler; the victim "
                     "is refreshed every tREFI.\n";
    }

    {
        std::cout << "\n8-sided pattern (TRRespass-style decoys):\n";
        fault::ChipModel chip(spec, kHcFirst, 7, geometry);
        attack::PatternBuilder builder(builder_config, 1);
        mitigation::TrrSampler trr(42, params);
        const std::size_t flips = runAttack(
            chip,
            builder.nSided(chip.weakestBank(), chip.weakestRow(), 8),
            &trr);
        std::cout << "  -> " << (flips ? "sampler saturated: the true "
                                         "pair escaped sampling long "
                                         "enough to cross HCfirst."
                                       : "no flips this run; raise "
                                         "kTargetActs for longer "
                                         "exposure.")
                  << "\n";
    }
    return 0;
}
