/**
 * @file
 * Quickstart: create a simulated DRAM chip, measure its RowHammer
 * vulnerability (HCfirst), inspect the flips a double-sided hammer
 * induces, and see how the PARA mitigation scales with vulnerability.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "charlib/hcfirst.hh"
#include "fault/population.hh"
#include "mitigation/para.hh"
#include "util/logging.hh"

using namespace rowhammer;

int
main()
{
    util::setVerbose(false);

    // 1. Pick a chip from the paper's population: the weakest LPDDR4-1y
    //    chip of manufacturer A (HCfirst = 4.8k, Table 4).
    const auto chips = fault::sampleConfigChips(
        fault::TypeNode::LPDDR4_1y, fault::Manufacturer::A, 2020, 1);
    fault::ChipModel chip = chips.front().makeModel();
    std::cout << "chip: " << chip.spec().label()
              << "  (ground-truth HCfirst = " << chip.trueHcFirst()
              << " hammers)\n";

    // 2. Measure HCfirst the way Section 5.5 does.
    util::Rng rng(1);
    charlib::HcFirstOptions options;
    options.sampleRows = 12;
    const auto hc_first = charlib::findHcFirst(chip, options, rng);
    std::cout << "measured HCfirst: "
              << (hc_first ? std::to_string(*hc_first)
                           : std::string("> 150k"))
              << " hammers\n";

    // 3. Hammer the weakest row past its threshold and look at the
    //    observed bit flips (post on-die-ECC for this LPDDR4 chip).
    const auto flips = chip.hammerDoubleSided(
        chip.weakestBank(), chip.weakestRow(), 20000,
        chip.spec().worstPattern, rng);
    std::cout << "double-sided hammer @20k: " << flips.size()
              << " bit flips observed\n";
    for (std::size_t i = 0; i < flips.size() && i < 5; ++i) {
        const auto &f = flips[i];
        std::cout << "  bank " << f.bank << " row " << f.row << " bit "
                  << f.bitIndex << " ("
                  << (f.oneToZero ? "1->0" : "0->1") << ")\n";
    }

    // 4. What would PARA need to protect this chip - and a future one?
    const auto timing = dram::lpddr4_3200();
    for (double hc : {43200.0, 4800.0, 512.0, 128.0}) {
        const double p =
            mitigation::Para::solveProbability(hc, timing, 1e-15);
        std::cout << "PARA p for HCfirst " << hc << ": " << p << "\n";
    }
    std::cout << "Lower HCfirst -> higher refresh probability -> more "
                 "DRAM bandwidth\nspent on mitigation (see "
                 "bench/fig10_mitigations).\n";
    return 0;
}
