/**
 * @file
 * Mitigation trade-off study: run one 8-core workload mix against every
 * mitigation mechanism at a chosen chip vulnerability and print the
 * performance / bandwidth-overhead trade-off, plus how PARA's refresh
 * probability responds to the reliability target.
 *
 * Usage:  ./build/examples/mitigation_tradeoff [HCfirst]
 * (default HCfirst = 4800, the paper's most vulnerable 2020 chip)
 */

#include <cstdlib>
#include <iostream>

#include "core/experiment.hh"
#include "mitigation/para.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace rowhammer;

int
main(int argc, char **argv)
{
    util::setVerbose(false);
    const double hc_first = argc > 1 ? std::atof(argv[1]) : 4800.0;

    core::ExperimentConfig config;
    config.system.cores = 4;
    config.instructionsPerCore = 60000;
    config.warmupInstructions = 10000;
    config.mixCount = 1;
    core::ExperimentRunner runner(config);

    std::cout << "workload: mix0 of the 48-mix catalogue ("
              << config.system.cores << " cores)\n"
              << "chip vulnerability: HCfirst = " << hc_first << "\n\n";

    util::TextTable table;
    table.setHeader({"mechanism", "norm perf %", "bandwidth ovh %",
                     "note"});
    // Warm the mix's baseline caches, then fan the per-mechanism runs
    // across the runner's pool (results are thread-count independent).
    runner.prepare({0});
    const auto kinds = mitigation::allKinds();
    const auto outcomes = runner.pool().map(
        kinds.size(), [&](std::size_t k) {
            return runner.runMix(0, kinds[k], hc_first);
        });
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        const auto &outcome = outcomes[k];
        if (!outcome) {
            table.addRow({toString(kinds[k]), "-", "-",
                          "not scalable at this HCfirst"});
            continue;
        }
        table.addRow(
            {toString(kinds[k]),
             util::fmt(outcome->normalizedPerformance * 100.0, 2),
             util::fmt(outcome->bandwidthOverheadPercent, 3), ""});
    }
    table.render(std::cout);

    // PARA's probability is a pure function of HCfirst and the BER
    // target; show the designer's dial.
    std::cout << "\nPARA probability vs reliability target at HCfirst "
              << hc_first << ":\n";
    for (double ber : {1e-9, 1e-12, 1e-15, 1e-18}) {
        std::cout << "  target BER " << ber << "/h -> p = "
                  << mitigation::Para::solveProbability(
                         hc_first, config.system.timing, ber)
                  << "\n";
    }
    return 0;
}
